"""Data-driven speculation-defense protection classes.

The speculation-coverage rule used to hard-code the mapping from defense
tags to the protection classes of the paper's taxonomy (``SPECTRE_V2_SAFE``
/ ``RSB_SAFE`` / ``LVI_SAFE`` frozensets consulted through an if/elif
ladder).  That made every new hardening backend — FineIBT, PAC-based
kernel CFI — a rule edit.  This module turns the table into a registry
keyed by defense tag:

- the stock :class:`~repro.hardening.defenses.Defense` tags are seeded
  from the same frozensets, so checker and lowering cannot drift;
- a new backend calls :func:`register_defense_classes` with the attack
  vectors its tag closes, and the speculation rule accepts the tag as an
  alternative lowering wherever it covers every class the config
  promises — no rule edit required;
- :func:`registry_snapshot` is stable, canonical key material for the
  incremental-lint cache (a registry change must invalidate cached
  speculation diagnostics).

Class names intentionally match the ``protects`` vocabulary of
:mod:`repro.hardening.custom` (``spectre_v2`` / ``ret2spec`` / ``lvi``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.hardening.defenses import (
    LVI_SAFE,
    RSB_SAFE,
    SPECTRE_V2_SAFE,
    DefenseConfig,
)
from repro.ir.types import Opcode

#: Forward-edge BTB poisoning (Spectre V2).
SPECTRE_V2 = "spectre_v2"
#: Backward-edge RSB poisoning (Ret2spec).
RET2SPEC = "ret2spec"
#: Load value injection on the target load.
LVI = "lvi"

KNOWN_CLASSES = frozenset({SPECTRE_V2, RET2SPEC, LVI})


def _seed_builtin() -> Dict[str, FrozenSet[str]]:
    classes: Dict[str, set] = {}
    for tag in SPECTRE_V2_SAFE:
        classes.setdefault(tag, set()).add(SPECTRE_V2)
    for tag in RSB_SAFE:
        classes.setdefault(tag, set()).add(RET2SPEC)
    for tag in LVI_SAFE:
        classes.setdefault(tag, set()).add(LVI)
    return {tag: frozenset(protects) for tag, protects in classes.items()}


#: Stock tag -> protection classes, derived from the defense frozensets.
_BUILTIN: Dict[str, FrozenSet[str]] = _seed_builtin()
#: Backend extension tags registered at runtime.
_EXTRA: Dict[str, FrozenSet[str]] = {}


def register_defense_classes(tag: str, protects: Iterable[str]) -> None:
    """Register (or update) an extension defense tag's protection classes.

    Stock tags are immutable — their classes come from the lowering's own
    frozensets and re-mapping them would let checker and code drift.
    """
    if tag in _BUILTIN:
        raise ValueError(f"stock defense tag {tag!r} cannot be re-mapped")
    protects = frozenset(protects)
    unknown = protects - KNOWN_CLASSES
    if unknown:
        raise ValueError(
            f"unknown protection class(es) {sorted(unknown)} for tag "
            f"{tag!r}; known: {sorted(KNOWN_CLASSES)}"
        )
    _EXTRA[tag] = protects


def unregister_defense_classes(tag: str) -> None:
    """Remove an extension tag (stock tags cannot be removed)."""
    _EXTRA.pop(tag, None)


def clear_extension_classes() -> None:
    """Drop every runtime-registered extension tag (test hygiene)."""
    _EXTRA.clear()


def is_class_registered(tag: str) -> bool:
    """Whether ``tag`` appears in the registry (stock or extension)."""
    return tag in _BUILTIN or tag in _EXTRA


def defense_classes(tag: str) -> FrozenSet[str]:
    """Protection classes ``tag`` provides (empty for unknown tags)."""
    if tag in _EXTRA:
        return _EXTRA[tag]
    return _BUILTIN.get(tag, frozenset())


def tags_for_class(cls: str) -> FrozenSet[str]:
    """Every registered tag that protects ``cls``."""
    return frozenset(
        tag
        for tag, protects in {**_BUILTIN, **_EXTRA}.items()
        if cls in protects
    )


def required_classes(opcode: Opcode, config: DefenseConfig) -> List[str]:
    """Protection classes ``config`` promises for a branch of ``opcode``.

    This is the config side of the taxonomy: which attack vectors the
    DefenseConfig claims to close on each edge kind.
    """
    required: List[str] = []
    if opcode in (Opcode.ICALL, Opcode.IJUMP):
        if config.retpolines:
            required.append(SPECTRE_V2)
        if config.lvi_cfi:
            required.append(LVI)
    elif opcode == Opcode.RET:
        if config.ret_retpolines:
            required.append(RET2SPEC)
        if config.lvi_cfi:
            required.append(LVI)
    return required


def registry_snapshot() -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """Canonical, sorted (tag, classes) pairs — cache-key material."""
    merged = {**_BUILTIN, **_EXTRA}
    return tuple(
        (tag, tuple(sorted(protects)))
        for tag, protects in sorted(merged.items())
    )
