"""The hardening pass: tag every remaining indirect branch with its defense.

Runs after PIBE's elimination passes (Section 4): whatever indirect calls
and returns are still present get the lowering selected by the
:class:`~repro.hardening.defenses.DefenseConfig`. The pass reproduces the
paper's coverage gaps faithfully (Section 8.6):

- inline-assembly functions (the paravirt hypercall layer) cannot be
  auto-instrumented — their indirect calls stay vulnerable (Table 11);
- boot-only returns are exempt: code that only runs during early boot is
  not attackable past that stage;
- indirect jumps surviving jump-table disabling (again inline asm) stay
  vulnerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hardening.coverage import (
    METADATA_KEY,
    applied_config,
    icall_exempt,
    ijump_exempt,
    ret_exempt,
)
from repro.hardening.defenses import Defense, DefenseConfig
from repro.ir.module import Module
from repro.ir.types import Opcode
from repro.passes.manager import ModulePass

__all__ = [
    "METADATA_KEY",
    "HardenReport",
    "HardeningPass",
    "applied_config",
]


@dataclass
class HardenReport:
    """Forward/backward edge coverage census (Tables 11 and 12 inputs)."""

    config_label: str = ""
    protected_icalls: int = 0
    vulnerable_icalls: int = 0
    protected_rets: int = 0
    vulnerable_rets: int = 0
    boot_only_rets: int = 0
    vulnerable_ijumps: int = 0
    protected_ijumps: int = 0
    #: per-defense-tag count of instrumented sites
    sites_by_defense: Dict[str, int] = field(default_factory=dict)

    def _bump(self, defense: Defense) -> None:
        self.sites_by_defense[defense.value] = (
            self.sites_by_defense.get(defense.value, 0) + 1
        )


class HardeningPass(ModulePass):
    """Apply a :class:`DefenseConfig` to every instrumentable branch."""

    name = "hardening"

    def __init__(self, config: DefenseConfig) -> None:
        self.config = config

    def run(self, module: Module) -> HardenReport:
        report = HardenReport(config_label=self.config.label())
        fwd = self.config.forward_defense()
        bwd = self.config.backward_defense()

        for func in module:
            for inst in func.instructions():
                if inst.opcode == Opcode.ICALL:
                    if not icall_exempt(func, inst) and fwd is not None:
                        inst.defense = fwd.value
                        report.protected_icalls += 1
                        report._bump(fwd)
                    else:
                        report.vulnerable_icalls += 1
                elif inst.opcode == Opcode.RET:
                    # Returns are protectable even in assembly functions
                    # (objtool-style return-thunk patching); only boot-only
                    # code is exempt (Section 8.6).
                    if ret_exempt(func):
                        report.boot_only_rets += 1
                    elif bwd is not None:
                        inst.defense = bwd.value
                        report.protected_rets += 1
                        report._bump(bwd)
                    else:
                        report.vulnerable_rets += 1
                elif inst.opcode == Opcode.IJUMP:
                    # Jump-table IJUMPs only exist when jump tables were
                    # allowed (no transient defenses); opaque asm IJUMPs can
                    # never be instrumented.
                    if not ijump_exempt(func, inst) and fwd is not None:
                        inst.defense = fwd.value
                        report.protected_ijumps += 1
                        report._bump(fwd)
                    else:
                        report.vulnerable_ijumps += 1

        module.metadata[METADATA_KEY] = self.config
        return report
