"""The hardening pass: tag every remaining indirect branch with its defense.

Runs after PIBE's elimination passes (Section 4): whatever indirect calls
and returns are still present get the lowering selected by the
:class:`~repro.hardening.defenses.DefenseConfig`. The pass reproduces the
paper's coverage gaps faithfully (Section 8.6):

- inline-assembly functions (the paravirt hypercall layer) cannot be
  auto-instrumented — their indirect calls stay vulnerable (Table 11);
- boot-only returns are exempt: code that only runs during early boot is
  not attackable past that stage;
- indirect jumps surviving jump-table disabling (again inline asm) stay
  vulnerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hardening.coverage import (
    METADATA_KEY,
    applied_config,
    icall_exempt,
    ijump_exempt,
    ret_exempt,
)
from repro.hardening.defenses import Defense, DefenseConfig
from repro.ir.basicblock import BasicBlock
from repro.ir.clone import clone_instruction_exact
from repro.ir.module import Module
from repro.ir.types import Opcode
from repro.passes.manager import ModulePass

__all__ = [
    "METADATA_KEY",
    "HardenReport",
    "HardeningPass",
    "applied_config",
]


@dataclass
class HardenReport:
    """Forward/backward edge coverage census (Tables 11 and 12 inputs)."""

    config_label: str = ""
    protected_icalls: int = 0
    vulnerable_icalls: int = 0
    protected_rets: int = 0
    vulnerable_rets: int = 0
    boot_only_rets: int = 0
    vulnerable_ijumps: int = 0
    protected_ijumps: int = 0
    #: per-defense-tag count of instrumented sites
    sites_by_defense: Dict[str, int] = field(default_factory=dict)

    def _bump(self, defense: Defense) -> None:
        self.sites_by_defense[defense.value] = (
            self.sites_by_defense.get(defense.value, 0) + 1
        )


class HardeningPass(ModulePass):
    """Apply a :class:`DefenseConfig` to every instrumentable branch."""

    name = "hardening"

    def __init__(self, config: DefenseConfig) -> None:
        self.config = config

    def run(self, module: Module) -> HardenReport:
        report = HardenReport(config_label=self.config.label())
        fwd = self.config.forward_defense()
        bwd = self.config.backward_defense()

        # Single scan, copy-on-write aware down to instruction
        # granularity: tagging only ever writes ``attrs["defense"]`` on
        # the tagged instruction, so on a COW module (a staged variant
        # stamped onto the shared optimized prefix) each tag copies
        # exactly what it dirties — the function shell on the first tag
        # in a function, the block's instruction list on the first tag in
        # a block, and the one tagged instruction. Untagged blocks and
        # instructions stay shared with the prefix, which makes the stamp
        # cost proportional to the number of tags rather than to module
        # size. On an ordinary (fully owned) module every instruction is
        # tagged in place, exactly as before COW existed.
        for name in list(module.functions):
            func = module.functions[name]
            # instructions belong to the COW source; never mutate them
            shared = module.is_cow_shared(name)
            func_owned = not shared
            for label in list(func.blocks):
                block = func.blocks[label]
                insts = block.instructions
                block_owned = not shared
                for i in range(len(insts)):
                    inst = insts[i]
                    opcode = inst.opcode
                    tag = None
                    if opcode == Opcode.ICALL:
                        if fwd is not None and not icall_exempt(func, inst):
                            tag = fwd
                            report.protected_icalls += 1
                        else:
                            report.vulnerable_icalls += 1
                    elif opcode == Opcode.RET:
                        # Returns are protectable even in assembly
                        # functions (objtool-style return-thunk patching);
                        # only boot-only code is exempt (Section 8.6).
                        if ret_exempt(func):
                            report.boot_only_rets += 1
                        elif bwd is not None:
                            tag = bwd
                            report.protected_rets += 1
                        else:
                            report.vulnerable_rets += 1
                    elif opcode == Opcode.IJUMP:
                        # Jump-table IJUMPs only exist when jump tables
                        # were allowed (no transient defenses); opaque asm
                        # IJUMPs can never be instrumented.
                        if fwd is not None and not ijump_exempt(func, inst):
                            tag = fwd
                            report.protected_ijumps += 1
                        else:
                            report.vulnerable_ijumps += 1
                    if tag is not None:
                        if shared:
                            if not func_owned:
                                func = module.mutable_shell(name)
                                func_owned = True
                            if not block_owned:
                                block = BasicBlock(label, insts)
                                func.blocks[label] = block
                                insts = block.instructions
                                block_owned = True
                            inst = clone_instruction_exact(inst)
                            insts[i] = inst
                        inst.defense = tag.value
                        report._bump(tag)

        module.metadata[METADATA_KEY] = self.config
        return report
