"""Defense taxonomy and configuration (paper Sections 2, 6).

Transient defenses (the paper's focus):

- **retpolines** — Spectre V2 forward-edge defense (Listing 4);
- **return retpolines** — Ret2spec/RSB backward-edge defense (Intel's
  recommendation, inlined at each return);
- **LVI-CFI** — LFENCE hardening of indirect-branch target loads
  (Listings 5 and 6);
- **fenced retpolines** — the paper's combined sequence (Listing 7), used
  when retpolines and LVI-CFI are enabled together: the two defenses
  instrument the same code and are otherwise incompatible (Section 6.3).

Non-transient defenses (LLVM-CFI, stack protector, SafeStack) are included
for the Table 1 comparison that motivates focusing on transient defenses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional


class Defense(enum.Enum):
    """Per-branch defense lowerings (values are the IR defense tags)."""

    #: Listing 4 — indirect call via RSB-trapping thunk.
    RETPOLINE = "retpoline"
    #: Listing 5 — ``lfence; jmp *reg`` thunk on the forward edge.
    LVI_CFI_FWD = "lvi_cfi_fwd"
    #: Listing 6 — ``pop; lfence; jmp *reg`` on the backward edge.
    LVI_CFI_RET = "lvi_cfi_ret"
    #: Intel return retpoline, inlined at the return site.
    RET_RETPOLINE = "ret_retpoline"
    #: Listing 7 — retpoline with LVI-protected target write.
    FENCED_RETPOLINE = "fenced_retpoline"
    #: Return retpoline combined with LVI return hardening.
    RET_RETPOLINE_LVI = "ret_retpoline_lvi"


class NonTransientDefense(enum.Enum):
    """Classical control-flow defenses (Table 1, cheap — not PIBE targets)."""

    LLVM_CFI = "llvm_cfi"
    STACKPROTECTOR = "stackprotector"
    SAFESTACK = "safestack"


#: Tags that protect a forward edge against BTB poisoning (Spectre V2).
SPECTRE_V2_SAFE = frozenset(
    {Defense.RETPOLINE.value, Defense.FENCED_RETPOLINE.value}
)
#: Tags that protect a backward edge against RSB poisoning (Ret2spec).
RSB_SAFE = frozenset(
    {Defense.RET_RETPOLINE.value, Defense.RET_RETPOLINE_LVI.value}
)
#: Tags that fence the target load against LVI.
LVI_SAFE = frozenset(
    {
        Defense.LVI_CFI_FWD.value,
        Defense.LVI_CFI_RET.value,
        Defense.FENCED_RETPOLINE.value,
        Defense.RET_RETPOLINE_LVI.value,
    }
)


@dataclass(frozen=True)
class DefenseConfig:
    """Which defense classes a kernel build enables.

    The three booleans match the paper's kernel configurations; arbitrary
    combinations are supported (Section 4: "arbitrary combinations of
    defenses"). ``nontransient`` adds the cheap classical defenses.
    """

    retpolines: bool = False
    ret_retpolines: bool = False
    lvi_cfi: bool = False
    nontransient: FrozenSet[NonTransientDefense] = field(
        default_factory=frozenset
    )

    # -- named configurations used throughout the evaluation ---------------

    @classmethod
    def none(cls) -> "DefenseConfig":
        return cls()

    @classmethod
    def retpolines_only(cls) -> "DefenseConfig":
        return cls(retpolines=True)

    @classmethod
    def ret_retpolines_only(cls) -> "DefenseConfig":
        return cls(ret_retpolines=True)

    @classmethod
    def lvi_only(cls) -> "DefenseConfig":
        return cls(lvi_cfi=True)

    @classmethod
    def all_defenses(cls) -> "DefenseConfig":
        return cls(retpolines=True, ret_retpolines=True, lvi_cfi=True)

    # -- lowering selection (Section 6.3) ------------------------------------

    def forward_defense(self) -> Optional[Defense]:
        """The lowering applied to indirect calls/jumps under this config."""
        if self.retpolines and self.lvi_cfi:
            return Defense.FENCED_RETPOLINE
        if self.retpolines:
            return Defense.RETPOLINE
        if self.lvi_cfi:
            return Defense.LVI_CFI_FWD
        return None

    def backward_defense(self) -> Optional[Defense]:
        """The lowering applied to returns under this config."""
        if self.ret_retpolines and self.lvi_cfi:
            return Defense.RET_RETPOLINE_LVI
        if self.ret_retpolines:
            return Defense.RET_RETPOLINE
        if self.lvi_cfi:
            return Defense.LVI_CFI_RET
        return None

    @property
    def any_transient(self) -> bool:
        return self.retpolines or self.ret_retpolines or self.lvi_cfi

    @property
    def disables_jump_tables(self) -> bool:
        """LLVM disables jump tables whenever retpolines or LVI hardening
        are enabled (Section 5.1)."""
        return self.retpolines or self.lvi_cfi

    def label(self) -> str:
        """Short human-readable configuration name."""
        if self.retpolines and self.ret_retpolines and self.lvi_cfi:
            return "all-defenses"
        parts = []
        if self.retpolines:
            parts.append("retpolines")
        if self.ret_retpolines:
            parts.append("ret-retpolines")
        if self.lvi_cfi:
            parts.append("LVI-CFI")
        for d in sorted(self.nontransient, key=lambda d: d.value):
            parts.append(d.value)
        return "+".join(parts) if parts else "none"
