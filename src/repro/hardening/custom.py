"""Custom defense registration (paper Sections 6 and 6.3).

PIBE "is not limited to these defenses and applies to all defenses that
have high overheads" — the paper explicitly suggests precise high-overhead
research defenses such as path-sensitive CFI. This module is that
extension point: register a defense with its per-branch cycle cost, static
expansion and protection properties, and the whole pipeline (hardening,
timing, size model, attack census) picks it up.

Example — a path-sensitive CFI that checks a hash of the taken path on
every indirect transfer::

    pscfi_fwd = CustomDefense(
        name="pscfi_fwd", kind="forward", cycles=35.0,
        site_expansion_units=4,
        protects={"spectre_v2", "lvi"},
    )
    pscfi_ret = CustomDefense(
        name="pscfi_ret", kind="backward", cycles=28.0,
        site_expansion_units=4,
        protects={"ret2spec", "lvi"},
    )
    register_defense(pscfi_fwd)
    register_defense(pscfi_ret)
    CustomHardeningPass(forward=pscfi_fwd, backward=pscfi_ret).run(module)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.hardening.coverage import (
    CUSTOM_METADATA_KEY,
    icall_exempt,
    ijump_exempt,
    ret_exempt,
)
from repro.hardening.harden import HardenReport
from repro.ir.module import Module
from repro.ir.types import Opcode
from repro.passes.manager import ModulePass

#: Attack vectors a defense can protect against (must match
#: :data:`repro.cpu.attacks.ALL_ATTACKS` vector names).
KNOWN_VECTORS = frozenset({"spectre_v2", "ret2spec", "lvi"})


@dataclass(frozen=True)
class CustomDefense:
    """A user-defined per-branch defense lowering."""

    #: unique tag recorded on protected instructions
    name: str
    #: "forward" (icalls/ijumps) or "backward" (returns)
    kind: str
    #: flat extra cycles per protected branch
    cycles: float
    #: static lowered-instruction growth per protected site
    site_expansion_units: int = 0
    #: attack vectors this lowering defeats
    protects: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind not in ("forward", "backward"):
            raise ValueError(f"kind must be forward/backward, got {self.kind!r}")
        unknown = set(self.protects) - KNOWN_VECTORS
        if unknown:
            raise ValueError(f"unknown attack vectors: {sorted(unknown)}")
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")


_REGISTRY: Dict[str, CustomDefense] = {}


def register_defense(defense: CustomDefense) -> CustomDefense:
    """Add a defense to the global registry (idempotent per name+spec)."""
    existing = _REGISTRY.get(defense.name)
    if existing is not None and existing != defense:
        raise ValueError(
            f"defense {defense.name!r} already registered with a "
            "different specification"
        )
    _REGISTRY[defense.name] = defense
    return defense


def registered_defense(name: str) -> Optional[CustomDefense]:
    """Look up a registered defense by tag name."""
    return _REGISTRY.get(name)


def clear_registry() -> None:
    """Remove all custom defenses (test isolation)."""
    _REGISTRY.clear()


def custom_defense_cost(tag: str) -> Optional[float]:
    """Cycle cost of a registered custom defense tag, if any."""
    defense = _REGISTRY.get(tag)
    return defense.cycles if defense is not None else None


def custom_expansion_units(tag: str) -> Optional[int]:
    """Static expansion units of a registered custom defense tag."""
    defense = _REGISTRY.get(tag)
    return defense.site_expansion_units if defense is not None else None


def custom_tag_protects(tag: str, vector: str) -> bool:
    """Whether a registered custom tag defeats the given attack vector."""
    defense = _REGISTRY.get(tag)
    return defense is not None and vector in defense.protects


class CustomHardeningPass(ModulePass):
    """Tag branches with registered custom defenses.

    Same coverage rules as the stock :class:`HardeningPass`: inline-asm
    functions and asm sites cannot be instrumented on the forward edge;
    boot-only returns are exempt.
    """

    name = "custom-hardening"

    def __init__(
        self,
        forward: Optional[CustomDefense] = None,
        backward: Optional[CustomDefense] = None,
    ) -> None:
        if forward is not None and forward.kind != "forward":
            raise ValueError("forward defense must have kind='forward'")
        if backward is not None and backward.kind != "backward":
            raise ValueError("backward defense must have kind='backward'")
        for defense in (forward, backward):
            if defense is not None and registered_defense(defense.name) is None:
                register_defense(defense)
        self.forward = forward
        self.backward = backward

    def run(self, module: Module) -> HardenReport:
        label = "+".join(
            d.name for d in (self.forward, self.backward) if d is not None
        )
        report = HardenReport(config_label=label or "custom-none")
        for func in module:
            for inst in func.instructions():
                if inst.opcode == Opcode.ICALL:
                    if not icall_exempt(func, inst) and self.forward:
                        inst.defense = self.forward.name
                        report.protected_icalls += 1
                    else:
                        report.vulnerable_icalls += 1
                elif inst.opcode == Opcode.RET:
                    if ret_exempt(func):
                        report.boot_only_rets += 1
                    elif self.backward:
                        inst.defense = self.backward.name
                        report.protected_rets += 1
                    else:
                        report.vulnerable_rets += 1
                elif inst.opcode == Opcode.IJUMP:
                    if not ijump_exempt(func, inst) and self.forward:
                        inst.defense = self.forward.name
                        report.protected_ijumps += 1
                    else:
                        report.vulnerable_ijumps += 1
        module.metadata[CUSTOM_METADATA_KEY] = label
        return report
