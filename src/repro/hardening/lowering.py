"""Assembly-level lowerings of each defense (paper Listings 4–7).

Two consumers:

- golden tests assert the emitted sequences match the paper's listings;
- the size model (Table 12) uses per-site expansion units — the extra
  lowered instructions a defense adds at a branch site — plus shared thunk
  sizes emitted once per image.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardening.defenses import Defense
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode

#: x86 sequence of each shared thunk (emitted once per image).
THUNK_BODIES: Dict[Defense, List[str]] = {
    Defense.RETPOLINE: [
        "__llvm_retpoline_r11:",
        "  callq jump",
        "loop: pause",
        "  lfence",
        "  jmp loop",
        "  nopl 0x0(%rax)",
        "jump: mov %r11, (%rsp)",
        "  retq",
    ],
    Defense.LVI_CFI_FWD: [
        "__x86_indirect_thunk_r11:",
        "  lfence",
        "  jmpq *%r11",
    ],
    Defense.FENCED_RETPOLINE: [
        "__llvm_retpoline_r11:",
        "  callq jump",
        "loop: pause",
        "  lfence",
        "  jmp loop",
        "  nopl 0x0(%rax)",
        "jump: mov %r11, (%rsp)",
        "  notq (%rsp)",
        "  notq (%rsp)",
        "  lfence",
        "  retq",
    ],
}

#: Inline sequence substituted at each protected branch site.
SITE_SEQUENCES: Dict[Defense, List[str]] = {
    Defense.RETPOLINE: ["call __llvm_retpoline_r11"],
    Defense.LVI_CFI_FWD: ["call __x86_indirect_thunk_r11"],
    Defense.FENCED_RETPOLINE: ["call __llvm_retpoline_r11"],
    # Listing 6: LVI backward-edge hardening replaces the ret.
    Defense.LVI_CFI_RET: ["pop %rcx", "lfence", "jmpq *%rcx"],
    # Return retpoline: Listing 4 without the leading call, inlined at the
    # original location of the return instruction (Section 6.1).
    Defense.RET_RETPOLINE: [
        "callq jump",
        "loop: pause",
        "  lfence",
        "  jmp loop",
        "jump: lea 8(%rsp), %rsp",
        "  retq",
    ],
    Defense.RET_RETPOLINE_LVI: [
        "callq jump",
        "loop: pause",
        "  lfence",
        "  jmp loop",
        "jump: lea 8(%rsp), %rsp",
        "  notq (%rsp)",
        "  notq (%rsp)",
        "  lfence",
        "  retq",
    ],
}

#: Per-site static expansion in lowered-instruction units (net of the
#: instruction replaced). Forward-edge thunk calls replace the indirect
#: call 1:1; backward-edge sequences are inlined at every return.
SITE_EXPANSION_UNITS: Dict[Defense, int] = {
    Defense.RETPOLINE: 0,
    Defense.LVI_CFI_FWD: 0,
    Defense.FENCED_RETPOLINE: 0,
    Defense.LVI_CFI_RET: 2,
    Defense.RET_RETPOLINE: 5,
    Defense.RET_RETPOLINE_LVI: 8,
}

#: Shared thunk sizes in instruction units (once per image).
THUNK_UNITS: Dict[Defense, int] = {
    Defense.RETPOLINE: 7,
    Defense.LVI_CFI_FWD: 2,
    Defense.FENCED_RETPOLINE: 10,
}


def lower_branch(inst: Instruction) -> List[str]:
    """Emit the assembly for a (possibly hardened) branch instruction."""
    tag = inst.defense
    if tag is None:
        if inst.opcode == Opcode.ICALL:
            return ["callq *%r11"]
        if inst.opcode == Opcode.RET:
            return ["retq"]
        if inst.opcode == Opcode.IJUMP:
            return ["jmpq *%rax"]
        raise ValueError(f"{inst!r} is not a lowerable branch")
    return list(SITE_SEQUENCES[Defense(tag)])


def site_expansion_units(inst: Instruction) -> int:
    """Static size growth (instruction units) a branch's defense adds."""
    tag = inst.defense
    if tag is None:
        return 0
    try:
        return SITE_EXPANSION_UNITS[Defense(tag)]
    except ValueError:
        from repro.hardening.custom import custom_expansion_units

        units = custom_expansion_units(tag)
        if units is not None:
            return units
        raise KeyError(f"unknown defense tag {tag!r}") from None


def required_thunks(tags: List[str]) -> List[Defense]:
    """Shared thunks an image needs given the branch tags present."""
    needed = []
    for defense in (
        Defense.RETPOLINE,
        Defense.LVI_CFI_FWD,
        Defense.FENCED_RETPOLINE,
    ):
        if defense.value in tags:
            needed.append(defense)
    return needed
