"""Shared defense-coverage semantics: which branches a config promises
to protect, and with which lowering.

This is the single source of truth for the paper's coverage gaps
(Section 8.6): :class:`~repro.hardening.harden.HardeningPass`,
:class:`~repro.hardening.custom.CustomHardeningPass` and the static
speculation-coverage lint (``PIBE5xx``) all call the same predicates, so
the checker can never drift from the transformation it checks.

Kept free of pass-manager imports on purpose — the static analyzer runs
inside ``PassManager(verify_each=...)`` and must not import it back.
"""

from __future__ import annotations

from typing import Optional

from repro.hardening.defenses import Defense, DefenseConfig
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import ATTR_ASM_SITE, FunctionAttr, Opcode

#: Module metadata key recording the applied stock configuration.
METADATA_KEY = "defense_config"
#: Module metadata key recording applied custom-defense labels.
CUSTOM_METADATA_KEY = "custom_defenses"


def icall_exempt(func: Function, inst: Instruction) -> bool:
    """Whether an indirect call cannot be instrumented: it lives in an
    opaque inline-asm function, or is itself an asm-emitted site
    (paravirt hypercalls, Table 11)."""
    return not func.is_instrumentable or bool(inst.attrs.get(ATTR_ASM_SITE))


def ret_exempt(func: Function) -> bool:
    """Whether a return needs no hardening: boot-only code is not
    attackable past early boot (Section 8.6). Returns in asm functions
    are still protectable (objtool-style return-thunk patching)."""
    return func.has_attr(FunctionAttr.BOOT_ONLY)


def ijump_exempt(func: Function, inst: Instruction) -> bool:
    """Whether an indirect jump cannot be instrumented: opaque asm
    functions, or target-less IJUMPs modelling asm computed gotos (only
    jump-table IJUMPs carry their targets and can be rewritten)."""
    return not func.is_instrumentable or not inst.targets


def branch_exempt(func: Function, inst: Instruction) -> bool:
    """Whether an indirect branch is exempt from hardening under every
    config (asm sites, boot-only returns, opaque ijumps)."""
    if inst.opcode == Opcode.ICALL:
        return icall_exempt(func, inst)
    if inst.opcode == Opcode.RET:
        return ret_exempt(func)
    if inst.opcode == Opcode.IJUMP:
        return ijump_exempt(func, inst)
    return True


def expected_defense(
    func: Function, inst: Instruction, config: DefenseConfig
) -> Optional[Defense]:
    """The lowering ``config`` promises for this branch, or ``None`` when
    the branch is exempt / the config leaves that edge undefended."""
    if inst.opcode == Opcode.ICALL:
        if icall_exempt(func, inst):
            return None
        return config.forward_defense()
    if inst.opcode == Opcode.RET:
        if ret_exempt(func):
            return None
        return config.backward_defense()
    if inst.opcode == Opcode.IJUMP:
        if ijump_exempt(func, inst):
            return None
        return config.forward_defense()
    return None


def applied_config(module: Module) -> DefenseConfig:
    """The defense configuration a module was hardened with (or none)."""
    config = module.metadata.get(METADATA_KEY)
    if isinstance(config, DefenseConfig):
        return config
    return DefenseConfig.none()


def custom_hardened(module: Module) -> bool:
    """Whether a custom hardening pass ran over this module."""
    return bool(module.metadata.get(CUSTOM_METADATA_KEY))
