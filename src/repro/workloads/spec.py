"""SPEC CPU2006-like userspace suite (paper Table 1, right column).

Eight synthetic components with the call-profile character of familiar
SPEC benchmarks: C components are direct-call and branch heavy, C++
components (omnetpp, xalancbmk, povray stand-ins) are virtual-dispatch
heavy, mcf/libquantum stand-ins are memory/arith loops with few calls.
Per-defense slowdown is the geometric mean across components — the number
the paper uses to justify focusing on transient defenses.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cpu.costs import DEFAULT_COSTS, CostModel
from repro.cpu.timing import TimingModel
from repro.engine.compiled import create_interpreter
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.clone import clone_module
from repro.ir.module import Module
from repro.ir.types import FunctionAttr
from repro.kernel.helpers import define, leaf, ops_table


@dataclass(frozen=True)
class SpecComponent:
    """Shape of one synthetic SPEC component's inner loop."""

    name: str
    arith: int
    loads: int
    stores: int
    dcalls: int
    icalls: int
    vcalls: int
    inner_trips: int = 8


#: Component mix: call densities chosen to reproduce Table 1's ordering
#: (LVI > ret-retpolines > retpolines on SPEC).
SPEC_COMPONENTS: Tuple[SpecComponent, ...] = (
    SpecComponent("perlbench", arith=90, loads=25, stores=10, dcalls=3, icalls=2, vcalls=0),
    SpecComponent("gcc", arith=110, loads=30, stores=12, dcalls=3, icalls=1, vcalls=0),
    SpecComponent("mcf", arith=60, loads=45, stores=8, dcalls=1, icalls=0, vcalls=0),
    SpecComponent("sjeng", arith=120, loads=25, stores=10, dcalls=2, icalls=1, vcalls=0),
    SpecComponent("libquantum", arith=150, loads=30, stores=12, dcalls=0, icalls=0, vcalls=0),
    SpecComponent("omnetpp", arith=70, loads=25, stores=8, dcalls=2, icalls=0, vcalls=5),
    SpecComponent("xalancbmk", arith=80, loads=28, stores=9, dcalls=2, icalls=0, vcalls=4),
    SpecComponent("povray", arith=100, loads=22, stores=8, dcalls=2, icalls=0, vcalls=3),
)


def build_spec_module(
    components: Tuple[SpecComponent, ...] = SPEC_COMPONENTS,
) -> Module:
    """Construct the userspace suite as one module with an entry per
    component (``run_<name>``)."""
    module = Module(name="spec2006")

    # Shared callees: small helpers and a virtual-method cluster.
    leaf(module, "spec_helper_a", "spec", work=3, loads=1, stores=1, params=2)
    leaf(module, "spec_helper_b", "spec", work=4, loads=2, stores=1, params=2)
    leaf(module, "spec_helper_c", "spec", work=2, loads=1, stores=0, params=1)
    for m in ("area", "transform", "visit"):
        leaf(module, f"vmethod_{m}", "spec", work=3, loads=2, stores=1, params=2)
    ops_table(
        module, "spec_vtable", [f"vmethod_{m}" for m in ("area", "transform", "visit")]
    )
    leaf(module, "fnptr_cb_a", "spec", work=3, loads=1, stores=1, params=1)
    leaf(module, "fnptr_cb_b", "spec", work=2, loads=1, stores=1, params=1)
    ops_table(module, "spec_callbacks", ["fnptr_cb_a", "fnptr_cb_b"])

    helpers = ("spec_helper_a", "spec_helper_b", "spec_helper_c")
    for comp in components:
        # Exported program entry points (kept as roots by dead-code
        # elimination, like the kernel's syscall handlers).
        body = define(
            module,
            f"run_{comp.name}",
            "spec",
            params=1,
            frame=64,
            attrs=[FunctionAttr.SYSCALL_ENTRY],
        )

        def inner(b, comp=comp):
            b.work(arith=comp.arith, loads=comp.loads, stores=comp.stores)
            for i in range(comp.dcalls):
                b.call(helpers[i % len(helpers)], args=2)
            for _ in range(comp.icalls):
                b.icall(
                    {"fnptr_cb_a": 3, "fnptr_cb_b": 1},
                    args=1,
                    table="spec_callbacks",
                )
            for j in range(comp.vcalls):
                method = ("area", "transform", "visit")[j % 3]
                b.icall(
                    {f"vmethod_{method}": 1},
                    args=2,
                    table="spec_vtable",
                    vcall=True,
                )

        body.loop(comp.inner_trips, inner)
        body.done()
    return module


def measure_spec_slowdown(
    config: DefenseConfig,
    iterations: int = 60,
    costs: CostModel = DEFAULT_COSTS,
    components: Tuple[SpecComponent, ...] = SPEC_COMPONENTS,
) -> Dict[str, float]:
    """Per-component slowdown (fraction) of ``config`` vs uninstrumented."""
    costs = dataclasses.replace(costs, kernel_entry=0.0)
    baseline_module = build_spec_module(components)
    hardened_module = clone_module(baseline_module)
    HardeningPass(config).run(hardened_module)
    hardened_module.bump_version()

    slowdowns: Dict[str, float] = {}
    for comp in components:
        base = TimingModel(baseline_module, costs=costs, model_icache=False)
        create_interpreter(baseline_module, [base], seed=9).run_function(
            f"run_{comp.name}", times=iterations
        )
        hard = TimingModel(hardened_module, costs=costs, model_icache=False)
        create_interpreter(hardened_module, [hard], seed=9).run_function(
            f"run_{comp.name}", times=iterations
        )
        slowdowns[comp.name] = hard.cycles / base.cycles - 1.0
    return slowdowns


def geomean_slowdown(slowdowns: Dict[str, float]) -> float:
    """Geometric-mean slowdown over components (paper's cpu2006 column)."""
    product = 1.0
    for value in slowdowns.values():
        product *= 1.0 + value
    return product ** (1.0 / len(slowdowns)) - 1.0 if slowdowns else 0.0
