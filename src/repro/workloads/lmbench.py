"""The LMBench-like latency suite (paper Section 8, Tables 2/3/5).

Twenty latency benchmarks matching the paper's rows. Each maps to the
synthetic kernel entry exercising the same subsystem path. Per-bench
operation counts are scaled inversely to path weight so a full suite run
stays fast while heavy benches still accumulate stable statistics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Benchmark, Workload

#: The full suite, in the paper's Table 2 row order.
LMBENCH_BENCHMARKS: List[Benchmark] = [
    Benchmark("null", (("getppid", 1),), default_ops=400),
    Benchmark("read", (("read", 1),), default_ops=300),
    Benchmark("write", (("write", 1),), default_ops=300),
    Benchmark("open", (("open", 1),), default_ops=200),
    Benchmark("stat", (("stat", 1),), default_ops=250),
    Benchmark("fstat", (("fstat", 1),), default_ops=300),
    Benchmark("af_unix", (("af_unix", 1),), default_ops=150),
    Benchmark("fork/exit", (("fork_exit", 1),), default_ops=60),
    Benchmark("fork/exec", (("fork_exec", 1),), default_ops=50),
    Benchmark("fork/shell", (("fork_shell", 1),), default_ops=30),
    Benchmark("pipe", (("pipe", 1),), default_ops=200),
    Benchmark("select_file", (("select_file", 1),), default_ops=80),
    Benchmark("select_tcp", (("select_tcp", 1),), default_ops=50),
    Benchmark("tcp_conn", (("tcp_conn", 1),), default_ops=120),
    Benchmark("udp", (("udp", 1),), default_ops=200),
    Benchmark("tcp", (("tcp", 1),), default_ops=180),
    Benchmark("mmap", (("mmap", 1),), default_ops=100),
    Benchmark("page_fault", (("page_fault", 1),), default_ops=400),
    Benchmark("sig_install", (("sig_install", 1),), default_ops=400),
    Benchmark("sig_dispatch", (("sig_dispatch", 1),), default_ops=250),
]

BY_NAME: Dict[str, Benchmark] = {b.name: b for b in LMBENCH_BENCHMARKS}

#: The retpoline-sensitive subset used in Table 3.
TABLE3_BENCHMARKS: List[Benchmark] = [
    BY_NAME[name]
    for name in (
        "null",
        "read",
        "write",
        "open",
        "stat",
        "fstat",
        "select_tcp",
        "udp",
        "tcp",
        "tcp_conn",
        "af_unix",
        "pipe",
    )
]


#: Approximate per-op latencies (µs) from the paper's Table 2 LTO column.
#: LMBench time-budgets each bench, so cheap operations run orders of
#: magnitude more often than expensive ones — the source of the profile's
#: heavy-tailed weight distribution and of the paper's observation that
#: "workload imbalance complicates the selection of an optimal threshold"
#: (Section 5.2).
PAPER_LATENCIES_US = {
    "null": 0.14,
    "read": 0.2,
    "write": 0.17,
    "open": 0.78,
    "stat": 0.4,
    "fstat": 0.21,
    "af_unix": 3.79,
    "fork/exit": 64.57,
    "fork/exec": 158.59,
    "fork/shell": 418.62,
    "pipe": 2.28,
    "select_file": 4.37,
    "select_tcp": 9.38,
    "tcp_conn": 8.01,
    "udp": 3.81,
    "tcp": 4.61,
    "mmap": 8.73,
    "page_fault": 0.11,
    "sig_install": 0.2,
    "sig_dispatch": 0.67,
}


def engine_workload(ops_scale: float = 1.0) -> Workload:
    """The engine-throughput stress mix paired with ``ScaledSpec``.

    A read/write-heavy blend of the hottest syscall paths (matching the
    LMBench profile's weight distribution) used by
    ``benchmarks/bench_engine.py`` to measure events/sec at the 10×
    kernel scale. Kept here, next to the profiling workloads, so the
    bench and any ad-hoc throughput experiment exercise the same mix.
    """
    counts = {
        "read": 400,
        "write": 400,
        "stat": 150,
        "open": 100,
        "select_file": 60,
        "mmap": 60,
        "pipe": 100,
    }
    components = tuple(
        (BY_NAME[name], max(1, int(round(ops * ops_scale))))
        for name, ops in counts.items()
    )
    return Workload(name="engine-mix", components=components)


def lmbench_workload(
    ops_scale: float = 1.0, time_budget_us: float = 120.0
) -> Workload:
    """The LMBench profiling workload.

    Each bench runs for the same simulated time budget, so per-bench
    operation counts are inversely proportional to per-op latency — the
    paper collects edge counts from 11 iterations of exactly this
    configuration.
    """
    components = []
    for bench in LMBENCH_BENCHMARKS:
        latency = PAPER_LATENCIES_US[bench.name]
        ops = max(1, int(round(time_budget_us * ops_scale / latency)))
        components.append((bench, ops))
    return Workload(name="lmbench3", components=tuple(components))
