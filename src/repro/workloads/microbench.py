"""Branch-cost microbenchmarks (paper Table 1, left columns).

Measures the per-branch tick overhead of each defense exactly the way the
paper does: a tight loop calling an empty function through a direct call,
an indirect call, or a virtual call (with the target unpredictable), run
once uninstrumented and once per defense configuration; the difference in
cycles per iteration is the reported overhead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.cpu.costs import DEFAULT_COSTS, CostModel
from repro.cpu.timing import TimingModel
from repro.engine.compiled import create_interpreter
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import HardeningPass
from repro.ir.builder import IRBuilder
from repro.ir.clone import clone_module
from repro.ir.function import Function
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import FunctionAttr

CALL_KINDS = ("dcall", "icall", "vcall")

#: iterations per measurement loop
DEFAULT_ITERATIONS = 2000


def build_microbench_module(kind: str) -> Module:
    """A userspace module: ``driver`` invokes an empty callee ``kind``-style
    once per invocation (two alternating callees keep the target
    unpredictable for icall/vcall, as in the paper's setup)."""
    if kind not in CALL_KINDS:
        raise ValueError(f"kind must be one of {CALL_KINDS}, got {kind!r}")
    module = Module(name=f"microbench-{kind}")

    for name in ("empty_a", "empty_b"):
        callee = Function(name, num_params=0, subsystem="micro")
        IRBuilder(callee).ret()
        module.add_function(callee)
    module.add_fptr_table(
        FunctionPointerTable("micro_targets", ["empty_a", "empty_b"])
    )

    # The measurement loop itself lives in the (uninstrumented) benchmark
    # harness in the paper's setup; BOOT_ONLY exempts the driver's own
    # return from backward-edge hardening the same way.
    driver = Function(
        "driver",
        num_params=0,
        subsystem="micro",
        attrs={FunctionAttr.BOOT_ONLY},
    )
    b = IRBuilder(driver)
    if kind == "dcall":
        b.call("empty_a", num_args=0)
    else:
        # Single runtime target: the overheads of Table 1 are defined
        # relative to a warm, predicted baseline in our cost model (the
        # per-defense constants already price in the loss of prediction).
        b.icall(
            {"empty_a": 1},
            num_args=0,
            fptr_table="micro_targets",
            vcall=(kind == "vcall"),
        )
    b.ret()
    module.add_function(driver)
    return module


def _measure_cycles(
    module: Module, iterations: int, costs: CostModel
) -> float:
    timing = TimingModel(module, costs=costs, model_icache=False)
    create_interpreter(module, [timing], seed=5).run_function(
        "driver", times=iterations
    )
    return timing.cycles


def measure_ticks(
    config: DefenseConfig,
    kind: str,
    iterations: int = DEFAULT_ITERATIONS,
    costs: CostModel = DEFAULT_COSTS,
) -> float:
    """Per-call tick overhead of ``config`` for one call kind."""
    # Userspace measurement: no kernel entry charge.
    costs = dataclasses.replace(costs, kernel_entry=0.0)
    baseline_module = build_microbench_module(kind)
    baseline = _measure_cycles(baseline_module, iterations, costs)

    hardened_module = clone_module(baseline_module)
    HardeningPass(config).run(hardened_module)
    hardened_module.bump_version()
    hardened = _measure_cycles(hardened_module, iterations, costs)
    return (hardened - baseline) / iterations


def measure_all_ticks(
    configs: Dict[str, DefenseConfig],
    iterations: int = DEFAULT_ITERATIONS,
) -> Dict[str, Dict[str, float]]:
    """Config label -> {dcall/icall/vcall -> ticks} (Table 1 left side)."""
    return {
        label: {
            kind: measure_ticks(config, kind, iterations=iterations)
            for kind in CALL_KINDS
        }
        for label, config in configs.items()
    }
