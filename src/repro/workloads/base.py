"""Workload/benchmark abstractions.

A :class:`Benchmark` is one latency measurement: a fixed sequence of kernel
entry invocations constituting a single *operation* (e.g. one pipe
ping-pong). A :class:`Workload` is a weighted mix of benchmarks used for
profiling (the paper's LMBench and ApacheBench training workloads).

``measure_benchmark`` runs a benchmark against a (possibly hardened)
module under the timing model and reports per-operation latency;
``profile_workload`` runs a workload against a profiling build and
returns the merged edge profile (the paper merges 11 iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.cpu.costs import DEFAULT_COSTS, CostModel
from repro.cpu.counting import CountingTimingModel
from repro.cpu.timing import TimingModel
from repro.engine.compiled import DEFAULT_ENGINE, create_interpreter
from repro.engine.interpreter import ExecutionLimits, Interpreter
from repro.ir.module import Module
from repro.profiling.profile_data import EdgeProfile
from repro.profiling.profiler import KernelProfiler

#: Nominal clock for converting cycles to wall time (Skylake-ish 3.7 GHz).
CLOCK_HZ = 3.7e9


@dataclass(frozen=True)
class Benchmark:
    """One latency benchmark.

    ``syscalls`` lists (entry name, invocations) making up a single
    operation; ``default_ops`` controls how many operations a measurement
    runs (heavier benches run fewer).
    """

    name: str
    syscalls: Tuple[Tuple[str, int], ...]
    default_ops: int = 200

    def run(
        self,
        interpreter: Interpreter,
        ops: Optional[int] = None,
    ) -> int:
        """Execute ``ops`` operations; returns the operation count."""
        count = ops if ops is not None else self.default_ops
        for _ in range(count):
            for syscall, times in self.syscalls:
                interpreter.run_syscall(syscall, times=times)
        return count

    @property
    def entries_per_op(self) -> int:
        return sum(times for _, times in self.syscalls)


@dataclass(frozen=True)
class Workload:
    """A named mix of benchmarks used as a profiling input."""

    name: str
    components: Tuple[Tuple[Benchmark, int], ...]  # (bench, ops)


@dataclass
class BenchResult:
    """Outcome of one benchmark measurement."""

    benchmark: str
    ops: int
    cycles: float
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.ops if self.ops else 0.0

    @property
    def latency_us(self) -> float:
        return self.cycles_per_op / CLOCK_HZ * 1e6

    @property
    def ops_per_sec(self) -> float:
        return CLOCK_HZ / self.cycles_per_op if self.cycles else 0.0


def timing_sink_for(
    module: Module,
    engine: str,
    costs: CostModel = DEFAULT_COSTS,
    model_icache: bool = True,
):
    """The cycle-accounting sink matching an engine's measurement mode.

    The vectorized engine measures in *counting mode* (warm predictors,
    purely additive charges — see :mod:`repro.cpu.counting`); pairing it
    with the stateful :class:`TimingModel` would silently fall back to
    event-by-event replay and forfeit the speedup. The reference and
    compiled engines keep the stateful model. Counting-mode cycle totals
    are a different (coarser) measurement semantics, so results from
    different engines must never be mixed within one comparison — the
    harness bakes ``engine`` into every cache key for exactly this
    reason.
    """
    if engine == "vectorized":
        return CountingTimingModel(module, costs=costs)
    return TimingModel(module, costs=costs, model_icache=model_icache)


def measure_benchmark(
    module: Module,
    bench: Benchmark,
    ops: Optional[int] = None,
    seed: int = 7,
    costs: CostModel = DEFAULT_COSTS,
    model_icache: bool = True,
    engine: str = DEFAULT_ENGINE,
) -> BenchResult:
    """Run one benchmark under the cycle model and report latency."""
    timing = timing_sink_for(
        module, engine, costs=costs, model_icache=model_icache
    )
    interpreter = create_interpreter(module, [timing], seed=seed, engine=engine)
    count = bench.run(interpreter, ops=ops)
    return BenchResult(
        benchmark=bench.name,
        ops=count,
        cycles=timing.cycles,
        counters=dict(timing.counters),
    )


def measure_benchmark_median(
    module: Module,
    bench: Benchmark,
    rounds: int = 5,
    ops: Optional[int] = None,
    seed: int = 7,
    costs: CostModel = DEFAULT_COSTS,
    engine: str = DEFAULT_ENGINE,
) -> Tuple[BenchResult, float]:
    """Median-of-rounds measurement (the paper reports medians over 11
    runs, Section 8).

    Each round uses a distinct seed (distinct stochastic path choices —
    the model's analogue of run-to-run variance). Returns the median
    round's result and the relative spread ``(max - min) / median``.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    results = [
        measure_benchmark(
            module, bench, ops=ops, seed=seed + i, costs=costs, engine=engine
        )
        for i in range(rounds)
    ]
    results.sort(key=lambda r: r.cycles_per_op)
    median = results[len(results) // 2]
    spread = (
        (results[-1].cycles_per_op - results[0].cycles_per_op)
        / median.cycles_per_op
        if median.cycles_per_op
        else 0.0
    )
    return median, spread


def measure_suite(
    module: Module,
    benches: Sequence[Benchmark],
    ops_scale: float = 1.0,
    seed: int = 7,
    costs: CostModel = DEFAULT_COSTS,
    engine: str = DEFAULT_ENGINE,
) -> Dict[str, BenchResult]:
    """Measure every benchmark in a suite; returns name -> result."""
    results: Dict[str, BenchResult] = {}
    for bench in benches:
        ops = max(1, int(bench.default_ops * ops_scale))
        results[bench.name] = measure_benchmark(
            module, bench, ops=ops, seed=seed, costs=costs, engine=engine
        )
    return results


def profile_workload(
    module: Module,
    workload: Workload,
    iterations: int = 11,
    seed: int = 3,
    ops_scale: float = 1.0,
    lbr_capacity: int = 32,
    engine: str = DEFAULT_ENGINE,
) -> EdgeProfile:
    """Collect and merge edge profiles over ``iterations`` workload runs."""
    merged = EdgeProfile(workload=workload.name)
    for i in range(iterations):
        profiler = KernelProfiler(
            workload=workload.name, lbr_capacity=lbr_capacity
        )
        interpreter = create_interpreter(
            module,
            [profiler],
            seed=seed + i,
            limits=ExecutionLimits(max_steps=50_000_000),
            engine=engine,
        )
        for bench, ops in workload.components:
            bench.run(interpreter, ops=max(1, int(ops * ops_scale)))
        merged.merge(profiler.finish())
    return merged
