"""Workloads: LMBench-like latency suite, SPEC-like userspace suite,
ApacheBench training workload, and macro throughput applications."""

from repro.workloads.apachebench import APACHE_REQUEST_BATCH, apachebench_workload
from repro.workloads.base import (
    CLOCK_HZ,
    BenchResult,
    Benchmark,
    Workload,
    measure_benchmark,
    measure_benchmark_median,
    measure_suite,
    profile_workload,
)
from repro.workloads.lmbench import (
    BY_NAME,
    LMBENCH_BENCHMARKS,
    TABLE3_BENCHMARKS,
    lmbench_workload,
)
from repro.workloads.macro import (
    ALL_MACROBENCHMARKS,
    APACHE,
    DBENCH,
    MacroBenchmark,
    NGINX,
    ThroughputResult,
    measure_throughput,
)
from repro.workloads.microbench import (
    CALL_KINDS,
    build_microbench_module,
    measure_all_ticks,
    measure_ticks,
)
from repro.workloads.spec import (
    SPEC_COMPONENTS,
    SpecComponent,
    build_spec_module,
    geomean_slowdown,
    measure_spec_slowdown,
)

__all__ = [
    "ALL_MACROBENCHMARKS",
    "APACHE",
    "APACHE_REQUEST_BATCH",
    "BY_NAME",
    "BenchResult",
    "Benchmark",
    "CALL_KINDS",
    "CLOCK_HZ",
    "DBENCH",
    "LMBENCH_BENCHMARKS",
    "MacroBenchmark",
    "NGINX",
    "SPEC_COMPONENTS",
    "SpecComponent",
    "TABLE3_BENCHMARKS",
    "ThroughputResult",
    "Workload",
    "apachebench_workload",
    "build_microbench_module",
    "build_spec_module",
    "geomean_slowdown",
    "lmbench_workload",
    "measure_all_ticks",
    "measure_benchmark",
    "measure_benchmark_median",
    "measure_spec_slowdown",
    "measure_suite",
    "measure_throughput",
    "measure_ticks",
    "profile_workload",
]
