"""Macrobenchmarks: Nginx, Apache and DBench throughput (paper Table 7).

Each application is modelled as a request/operation batch over the
synthetic kernel, weighted to match the app's character the paper
describes: Nginx is the lightweight event server (most kernel-bound, so
most sensitive to kernel defenses), Apache's MPM-event does more userspace
work per request (we add a userspace cycle allowance that dilutes kernel
overhead), and DBench is a tmpfs file-server mix.

Throughput is reported the way the paper does: requests/sec (or MB/sec),
with degradation expressed relative to the vanilla LTO baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.costs import DEFAULT_COSTS, CostModel
from repro.engine.compiled import DEFAULT_ENGINE, create_interpreter
from repro.ir.module import Module
from repro.workloads.base import CLOCK_HZ, Benchmark, timing_sink_for


@dataclass(frozen=True)
class MacroBenchmark:
    """A throughput application model."""

    name: str
    #: kernel entries per reported unit of work (request / dbench op)
    batch: Benchmark
    #: units of work represented by one batch execution
    units_per_batch: float
    #: userspace cycles spent per unit (not subject to kernel hardening)
    userspace_cycles_per_unit: float
    #: throughput unit label
    unit: str


#: Nginx: 4-byte static page, sendfile-ish fast path, tiny userspace cost.
NGINX = MacroBenchmark(
    name="Nginx",
    batch=Benchmark(
        "nginx_batch",
        (
            ("recvfrom", 4),
            ("stat", 4),
            ("open", 1),
            ("read", 4),
            ("tcp", 4),
            ("select_tcp", 1),  # event-loop readiness scan
        ),
        default_ops=1,
    ),
    units_per_batch=4.0,
    userspace_cycles_per_unit=2_000.0,
    unit="req/sec",
)

#: Apache MPM-event: heavier userspace per request, extra logging write.
APACHE = MacroBenchmark(
    name="Apache",
    batch=Benchmark(
        "apache_batch",
        (
            ("recvfrom", 4),
            ("stat", 4),
            ("open", 1),
            ("read", 4),
            ("tcp", 4),
            ("write", 1),
        ),
        default_ops=1,
    ),
    units_per_batch=4.0,
    userspace_cycles_per_unit=9_000.0,
    unit="req/sec",
)

#: DBench on tmpfs: file-server operation mix, throughput in MB/sec.
DBENCH = MacroBenchmark(
    name="DBench",
    batch=Benchmark(
        "dbench_batch",
        (
            ("open", 2),
            ("read", 6),
            ("write", 6),
            ("stat", 3),
            ("fstat", 2),
            ("mmap", 1),
        ),
        default_ops=1,
    ),
    units_per_batch=1.0,
    userspace_cycles_per_unit=4_000.0,
    unit="MB/sec",
)

ALL_MACROBENCHMARKS = (NGINX, APACHE, DBENCH)


@dataclass
class ThroughputResult:
    app: str
    unit: str
    throughput: float
    kernel_cycles_per_unit: float
    userspace_cycles_per_unit: float

    def degradation_vs(self, baseline: "ThroughputResult") -> float:
        """Relative throughput change vs a baseline (negative = slower)."""
        if baseline.throughput == 0:
            return 0.0
        return self.throughput / baseline.throughput - 1.0


def measure_throughput(
    module: Module,
    app: MacroBenchmark,
    batches: int = 40,
    seed: int = 11,
    costs: CostModel = DEFAULT_COSTS,
    engine: str = DEFAULT_ENGINE,
) -> ThroughputResult:
    """Run the app model and convert cycles to units/sec throughput."""
    timing = timing_sink_for(module, engine, costs=costs)
    interpreter = create_interpreter(module, [timing], seed=seed, engine=engine)
    for _ in range(batches):
        app.batch.run(interpreter, ops=1)
    kernel_per_unit = timing.cycles / (batches * app.units_per_batch)
    total_per_unit = kernel_per_unit + app.userspace_cycles_per_unit
    return ThroughputResult(
        app=app.name,
        unit=app.unit,
        throughput=CLOCK_HZ / total_per_unit,
        kernel_cycles_per_unit=kernel_per_unit,
        userspace_cycles_per_unit=app.userspace_cycles_per_unit,
    )
