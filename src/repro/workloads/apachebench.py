"""ApacheBench-style profiling workload (paper Section 8.4).

The paper profiles the kernel under 1M ApacheBench requests to test how
robust PIBE's optimizations are to a *mismatched* training workload. Our
equivalent drives the request-serving kernel paths: accept/receive on a
TCP socket, stat+open+read of the static file, transmit of the response,
and an access-log append — a deliberately monotonic mix compared to
LMBench's broad coverage.
"""

from __future__ import annotations

from repro.workloads.base import Benchmark, Workload

#: One batch of four HTTP requests for a small static page (keep-alive:
#: connection setup amortized across requests, the file dentry mostly
#: cached so ``open`` happens once per batch).
APACHE_REQUEST_BATCH = Benchmark(
    "apache_request_batch",
    (
        ("tcp_conn", 1),   # new connection for the batch
        ("recvfrom", 4),   # request reads
        ("stat", 4),       # per-request path revalidation
        ("open", 1),       # dentry-cold open
        ("read", 4),       # page-cache reads of the body
        ("tcp", 4),        # response transmit round trips
        ("write", 1),      # access-log append
    ),
    default_ops=120,
)


#: Server housekeeping that runs alongside request serving: worker
#: lifecycle (fork/reap), file mappings, signal management, readiness
#: polling and the page faults of a living address space. Low weight
#: relative to the request path — the workload stays "monotonic compared
#: to LMBench" (Section 8.4) — but it touches the corresponding kernel
#: paths the way a real server process does.
APACHE_HOUSEKEEPING = Benchmark(
    "apache_housekeeping",
    (
        ("fork_exit", 1),
        ("mmap", 2),
        ("sig_install", 2),
        ("sig_dispatch", 1),
        ("select_tcp", 3),
        ("page_fault", 30),
        ("pipe", 2),
        ("getppid", 4),
    ),
    default_ops=4,
)


def apachebench_workload(ops_scale: float = 1.0) -> Workload:
    """The Apache training workload used in the robustness experiment."""
    return Workload(
        name="apache2",
        components=(
            (APACHE_REQUEST_BATCH, max(1, int(120 * ops_scale))),
            (APACHE_HOUSEKEEPING, max(1, int(4 * ops_scale))),
        ),
    )
