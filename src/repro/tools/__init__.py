"""Command-line toolchain."""

from repro.tools.cli import build_parser, main

__all__ = ["build_parser", "main"]
