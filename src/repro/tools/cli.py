"""Command-line toolchain — the reproduction's equivalent of the PIBE
artifact's workflow scripts (``compile_install_kernel.py``,
``run_artifact.sh``, ``generate_tables.sh``).

Usage::

    python -m repro build-kernel -o kernel.ir
    python -m repro stats -k kernel.ir
    python -m repro profile -k kernel.ir -w lmbench -o profile.json
    python -m repro optimize -k kernel.ir -p profile.json \\
        --defenses all --lax -o hardened.ir
    python -m repro benchmark -k hardened.ir --baseline kernel.ir
    python -m repro attack -k hardened.ir
    python -m repro evaluate --fast

Kernels are stored as textual IR (site ids included, so profiles taken
on a dump remain valid after reloading); profiles are stored as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.core.config import PibeConfig
from repro.core.pipeline import PibePipeline
from repro.core.report import build_overhead_report
from repro.cpu.attacks import ALL_ATTACKS, attack_surface
from repro.hardening.defenses import DefenseConfig
from repro.hardening.harden import applied_config
from repro.ir.module import Module
from repro.ir.parser import dump_module, parse_module
from repro.kernel.generator import build_kernel, kernel_stats
from repro.kernel.spec import DEFAULT_SPEC, KernelSpec, SmallSpec
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.apachebench import apachebench_workload
from repro.workloads.base import measure_suite
from repro.workloads.lmbench import (
    LMBENCH_BENCHMARKS,
    TABLE3_BENCHMARKS,
    lmbench_workload,
)

DEFENSE_CHOICES = {
    "none": DefenseConfig.none,
    "retpolines": DefenseConfig.retpolines_only,
    "ret-retpolines": DefenseConfig.ret_retpolines_only,
    "lvi": DefenseConfig.lvi_only,
    "all": DefenseConfig.all_defenses,
}

SUITES = {
    "lmbench": LMBENCH_BENCHMARKS,
    "table3": TABLE3_BENCHMARKS,
}


def _load_kernel(args) -> Module:
    if getattr(args, "kernel", None):
        text = Path(args.kernel).read_text()
        return parse_module(text)
    spec: KernelSpec = SmallSpec() if args.small else DEFAULT_SPEC
    if args.seed is not None:
        import dataclasses

        spec = dataclasses.replace(spec, seed=args.seed)
    return build_kernel(spec)


def _write_or_print(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text)
        print(f"wrote {output} ({len(text.splitlines())} lines)")
    else:
        print(text)


def _add_kernel_args(parser, required_file=False) -> None:
    parser.add_argument(
        "-k",
        "--kernel",
        help="textual IR file; omitted -> build the default synthetic kernel",
        required=required_file,
    )
    parser.add_argument(
        "--small", action="store_true", help="use the reduced test kernel"
    )
    parser.add_argument("--seed", type=int, default=None)


# -- subcommands ------------------------------------------------------------


def cmd_build_kernel(args) -> int:
    """Build (or load) a kernel and dump it as textual IR."""
    module = _load_kernel(args)
    _write_or_print(dump_module(module), args.output)
    return 0


def cmd_stats(args) -> int:
    """Print the static census and attack surface of an image."""
    module = _load_kernel(args)
    stats = kernel_stats(module)
    print(f"module {module.name}")
    for key, value in stats.as_dict().items():
        print(f"  {key:16s} {value}")
    config = applied_config(module)
    print(f"  defenses         {config.label()}")
    print(f"  attack surface   {attack_surface(module)}")
    return 0


def cmd_profile(args) -> int:
    """Run the profiling phase and write the edge profile as JSON."""
    module = _load_kernel(args)
    if args.workload == "lmbench":
        workload = lmbench_workload(ops_scale=args.ops_scale)
    else:
        workload = apachebench_workload(ops_scale=args.ops_scale)
    pipeline = PibePipeline(module)
    profile = pipeline.profile(workload, iterations=args.iterations)
    Path(args.output).write_text(profile.to_json())
    print(
        f"profiled {len(profile.direct)} direct / "
        f"{len(profile.indirect)} indirect sites over "
        f"{profile.runs} iteration(s); wrote {args.output}"
    )
    return 0


def cmd_optimize(args) -> int:
    """Optimize and harden a kernel according to the flags."""
    module = _load_kernel(args)
    profile = None
    if args.profile:
        profile = EdgeProfile.from_json(Path(args.profile).read_text())
    config = PibeConfig(
        defenses=DEFENSE_CHOICES[args.defenses](),
        icp_budget=args.icp_budget,
        inline_budget=args.inline_budget,
        lax_heuristics=args.lax,
        use_default_inliner=args.default_inliner,
    )
    build = PibePipeline(module).build_variant(config, profile)
    _write_or_print(dump_module(build.module), args.output)
    for name, report in build.reports.items():
        summary = getattr(report, "summary", None)
        print(f"[{name}] {summary() if callable(summary) else report}")
    return 0


def cmd_benchmark(args) -> int:
    """Measure suite latencies (and overheads vs a baseline image)."""
    module = _load_kernel(args)
    benches = SUITES[args.suite]
    results = measure_suite(
        module, benches, ops_scale=args.ops_scale, engine=args.engine
    )
    measured = {name: r.cycles_per_op for name, r in results.items()}

    baseline = None
    if args.baseline:
        base_module = parse_module(Path(args.baseline).read_text())
        base_results = measure_suite(
            base_module, benches, ops_scale=args.ops_scale, engine=args.engine
        )
        baseline = {name: r.cycles_per_op for name, r in base_results.items()}

    print(f"{'bench':14s} {'latency (us)':>14s}" + ("  overhead" if baseline else ""))
    for bench in benches:
        row = f"{bench.name:14s} {results[bench.name].latency_us:>14.3f}"
        if baseline:
            overhead = measured[bench.name] / baseline[bench.name] - 1
            row += f" {overhead:>9.1%}"
        print(row)
    if baseline:
        report = build_overhead_report("cli", baseline, measured)
        print(f"{'geomean':14s} {'':>14s} {report.geomean:>9.1%}")
    return 0


def cmd_attack(args) -> int:
    """Census and simulate transient attacks against an image."""
    module = _load_kernel(args)
    print(f"defenses applied: {applied_config(module).label()}")
    for attack in ALL_ATTACKS:
        if args.vector != "all" and attack.vector != args.vector:
            continue
        sites = attack.hijackable_sites(module)
        print(f"\n{attack.vector}: {len(sites)} hijackable site(s)")
        for func_name, inst in sites[: args.limit]:
            outcome = attack.attempt(module, func_name, inst)
            verdict = "HIJACKED" if outcome.success else "defended"
            print(f"  [{verdict}] @{func_name}: {outcome.detail}")
        if len(sites) > args.limit:
            print(f"  ... and {len(sites) - args.limit} more")
    return 0


def cmd_lint(args) -> int:
    """Run the static CFI analyzer over an image and report diagnostics."""
    from repro.static import (
        Severity,
        all_rules,
        lint_module,
        load_baseline,
        new_diagnostics,
        to_sarif_json,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            codes = ", ".join(sorted(rule.codes))
            print(f"{rule.name:28s} {rule.description}")
            print(f"{'':28s} codes: {codes}")
        return 0

    module = _load_kernel(args)
    profile = None
    if args.profile:
        profile = EdgeProfile.from_json(Path(args.profile).read_text())
    cache = None
    if args.cache_dir:
        from repro.evaluation.cache import DiskCache

        cache = DiskCache(Path(args.cache_dir))
    report = lint_module(
        module,
        rules=args.rules or None,
        profile=profile,
        cache=cache,
        jobs=args.jobs or 1,
    )
    if args.stats and report.stats:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(report.stats.items()))
        print(f"lint stats: {pairs}", file=sys.stderr)

    if args.format == "json":
        _write_or_print(report.to_json(), args.output)
    elif args.format == "sarif":
        _write_or_print(to_sarif_json(report), args.output)
    else:
        _write_or_print(report.to_text(), args.output)

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), report)
        print(f"wrote baseline {args.write_baseline}", file=sys.stderr)

    if args.fail_on == "never":
        return 0
    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    if args.baseline:
        fresh = new_diagnostics(report, load_baseline(Path(args.baseline)))
        gated = [d for d in fresh if d.severity >= threshold]
        if gated:
            print(
                f"{len(gated)} new finding(s) not in baseline "
                f"{args.baseline}:",
                file=sys.stderr,
            )
            for diag in gated:
                print(f"  {diag.render()}", file=sys.stderr)
            return 1
        return 0
    return 1 if report.at_least(threshold) else 0


def cmd_security(args) -> int:
    """Residual indirect-target metrics (points-to security report)."""
    from repro.analysis.security import security_metrics

    module = _load_kernel(args)
    metrics = security_metrics(module)
    text = json.dumps(
        metrics.to_dict(include_sites=args.sites), indent=2, sort_keys=True
    )
    _write_or_print(text, args.output)
    return 0


def cmd_hotspots(args) -> int:
    """Per-function cycle attribution over chosen syscalls."""
    from repro.analysis.hotspots import collect_hotspots, format_hotspots

    module = _load_kernel(args)
    syscalls = args.syscall or ["read", "write", "open", "pipe"]
    for syscall in syscalls:
        if syscall not in module.syscalls:
            print(f"unknown syscall {syscall!r}", file=sys.stderr)
            return 2
    spots = collect_hotspots(
        module, syscalls, ops=args.ops, top=args.top
    )
    print(f"hotspots over {syscalls} x{args.ops} ops:")
    print(format_hotspots(spots))
    return 0


def cmd_diff(args) -> int:
    """Structural diff between two dumped images."""
    from repro.analysis.diff import diff_modules

    before = parse_module(Path(args.before).read_text())
    after = parse_module(Path(args.after).read_text())
    print(diff_modules(before, after).summary())
    return 0


def _eval_settings(args) -> "EvalSettings":  # noqa: F821 — local import below
    """EvalSettings from the shared evaluate/faults CLI knobs."""
    from repro.evaluation.harness import EvalSettings

    import dataclasses

    if args.fast:
        settings = EvalSettings(
            spec=SmallSpec(),
            profile_iterations=1,
            profile_ops_scale=0.2,
            measure_ops_scale=0.15,
        )
    else:
        settings = EvalSettings()
    overrides = {}
    if getattr(args, "jobs", None) is not None:
        overrides["jobs"] = args.jobs
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "cell_timeout", None) is not None:
        overrides["cell_timeout"] = args.cell_timeout
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    return dataclasses.replace(settings, **overrides) if overrides else settings


def _add_engine_arg(parser, default=None) -> None:
    from repro.engine.compiled import KNOWN_ENGINES

    parser.add_argument(
        "--engine",
        choices=KNOWN_ENGINES,
        default=default,
        help=(
            "execution engine: reference (oracle), compiled (exact replay, "
            "default), vectorized (counting-mode batching — fastest, "
            "measures warm-predictor cycles)"
        ),
    )


def _add_harness_args(parser) -> None:
    """Fault-tolerance / scale knobs shared by evaluate and faults."""
    _add_engine_arg(parser)
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for parallel measurement (default: 1)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="resubmissions per failing cell before inline degradation",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-cell wall-clock limit in seconds (parallel path)",
    )
    parser.add_argument(
        "--cache-dir",
        help="persistent result cache directory (e.g. .repro-cache)",
    )


def cmd_evaluate(args) -> int:
    """Regenerate the paper's tables (all or selected)."""
    # Local import: the evaluation stack is heavy.
    from repro.evaluation import tables
    from repro.evaluation.harness import EvalContext

    ctx = EvalContext(_eval_settings(args))
    generators = {
        "figure1": lambda: tables.figure1(),
        "table1": lambda: tables.table1(),
        "table2": lambda: tables.table2(ctx),
        "table3": lambda: tables.table3(ctx),
        "table4": lambda: tables.table4(ctx),
        "table5": lambda: tables.table5(ctx),
        "table6": lambda: tables.table6(ctx),
        "table7": lambda: tables.table7(ctx),
        "table8": lambda: tables.table8(ctx),
        "table9": lambda: tables.table9(ctx),
        "table10": lambda: tables.table10(ctx),
        "table11": lambda: tables.table11(ctx),
        "table12": lambda: tables.table12(ctx),
        "robustness": lambda: tables.robustness(ctx),
    }
    chosen = args.experiment or list(generators)
    for name in chosen:
        if name not in generators:
            print(f"unknown experiment {name!r}", file=sys.stderr)
            return 2
        result = generators[name]()
        print(result.table.to_text())
        print()
    return 0


def _stress_configs(n: int):
    """``n`` distinct measurement cells for the fault stress matrix.

    Budget variants use the grid the fault plans key on (``icp=99%`` for
    the transient spec, ``icp=99.99%`` for the permanent one in the
    default plan).
    """
    budgets = (0.9, 0.99, 0.999, 0.9999, 0.99999, 0.999999)
    pool = [
        PibeConfig.lto_baseline(),
        PibeConfig.hardened(DefenseConfig.retpolines_only()),
    ]
    for budget in budgets:
        pool.append(
            PibeConfig.hardened(
                DefenseConfig.retpolines_only(),
                icp_budget=budget,
                inline_budget=budget,
            )
        )
    for budget in budgets:
        pool.append(
            PibeConfig.hardened(
                DefenseConfig.all_defenses(),
                icp_budget=budget,
                inline_budget=budget,
                lax_heuristics=True,
            )
        )
    if not 1 <= n <= len(pool):
        raise SystemExit(f"--configs must be in 1..{len(pool)}")
    return pool[:n]


def cmd_cache(args) -> int:
    """Inspect the persistent result cache on disk."""
    from repro.evaluation.cache import CACHE_DIR_NAME, DiskCache

    root = Path(args.cache_dir or CACHE_DIR_NAME)
    cache = DiskCache(root)
    usage = cache.disk_usage()
    quarantined = 0
    if cache.quarantine_dir().is_dir():
        quarantined = sum(
            1 for _ in cache.quarantine_dir().glob("*.json")
        )
        usage.pop(cache.quarantine_dir().name, None)
    payload = {
        "root": str(root),
        "kinds": {kind: usage[kind] for kind in sorted(usage)},
        "total_entries": sum(u["entries"] for u in usage.values()),
        "total_bytes": sum(u["bytes"] for u in usage.values()),
        "quarantined": quarantined,
    }
    if args.json:
        # sort_keys so the output is byte-stable for a given cache state:
        # the serve `stats` endpoint and snapshot tests string-compare it.
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not root.is_dir():
        print(f"no cache at {root}")
        return 0
    print(f"cache {root}")
    print(f"{'kind':12s} {'entries':>8s} {'bytes':>12s}")
    for kind, info in usage.items():
        print(f"{kind:12s} {info['entries']:>8d} {info['bytes']:>12d}")
    print(
        f"{'total':12s} {payload['total_entries']:>8d} "
        f"{payload['total_bytes']:>12d}"
    )
    if quarantined:
        print(f"quarantined  {quarantined:>8d}")
    return 0


def cmd_faults(args) -> int:
    """Stress the evaluation harness under an injected fault plan."""
    import tempfile

    from repro import faults as faultlib
    from repro.evaluation.harness import EvalContext, cell_label

    if args.plan:
        plan = faultlib.FaultPlan.from_json(Path(args.plan).read_text())
        source = args.plan
    else:
        plan = faultlib.FaultPlan.from_env()
        source = f"${faultlib.ENV_VAR}"
        if plan is None:
            plan = faultlib.default_stress_plan()
            source = "built-in stress plan"
    args.fast = True  # stress runs always use the reduced-scale matrix
    settings = _eval_settings(args)
    import dataclasses

    if args.jobs is None:
        # Parallel by default: worker crashes/hangs only exist with a pool.
        settings = dataclasses.replace(settings, jobs=2)
    if settings.cache_dir is None:
        settings = dataclasses.replace(
            settings, cache_dir=tempfile.mkdtemp(prefix="repro-faults-cache-")
        )
    configs = _stress_configs(args.configs)

    print(f"fault plan ({source}): {len(plan.specs)} spec(s)")
    for spec in plan.specs:
        times = "unlimited" if spec.times is None else spec.times
        print(f"  {spec.point:14s} {spec.mode:9s} match={spec.match!r} times={times}")
    print(
        f"matrix: {len(configs)} configs x 1 workload, jobs={settings.jobs}, "
        f"max_retries={settings.max_retries}, cell_timeout={settings.cell_timeout}"
    )

    faultlib.install(plan)
    try:
        ctx = EvalContext(settings)
        results = ctx.measure_many(configs)
    finally:
        faultlib.clear()
    report = results.failure_report

    failed = set(report.failed_indices())
    for i, config in enumerate(configs):
        status = "FAILED" if i in failed else "ok"
        print(f"  [{status:6s}] {cell_label(config, 'lmbench')}")
    print(f"report: {report.summary()}")
    print(f"cache: {ctx.cache.stats()}")
    if args.output:
        Path(args.output).write_text(report.to_json() + "\n")
        print(f"wrote {args.output}")
    if args.expect_failures is not None:
        if len(report.failures) != args.expect_failures:
            print(
                f"expected {args.expect_failures} permanent failure(s), "
                f"got {len(report.failures)}",
                file=sys.stderr,
            )
            return 1
        return 0
    return 0 if report.ok else 2


def cmd_serve(args) -> int:
    """Run the persistent evaluation server (until SIGINT or a client
    ``shutdown`` request)."""
    from repro.evaluation.cache import CACHE_DIR_NAME
    from repro.serve.client import DEFAULT_PORT
    from repro.serve.server import ReproServer, run_server

    if getattr(args, "cache_dir", None) is None and not args.no_cache:
        # A server without a disk cache forgets everything on restart;
        # default to the standard cache root instead of nothing.
        args.cache_dir = CACHE_DIR_NAME
    settings = _eval_settings(args)
    server = ReproServer(
        settings,
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        unix_path=args.unix,
    )
    print(
        f"repro serve: kernel {server.ctx.kernel.name} "
        f"({type(settings.spec).__name__}), engine {settings.engine}, "
        f"jobs {settings.jobs}, cache "
        f"{settings.cache_dir or 'disabled'}"
    )

    async def _serve() -> None:
        await server.start()
        print(f"listening on {server.address}")
        if args.ready_file:
            # CI handshake: the file appears only once the socket accepts.
            Path(args.ready_file).write_text(server.address + "\n")
        await server.serve_until_shutdown()

    import asyncio

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    finally:
        server.ctx.close()
    print("server stopped")
    return 0


def _client_config(args) -> PibeConfig:
    """A PibeConfig from the optimize-style client flags."""
    return PibeConfig(
        defenses=DEFENSE_CHOICES[args.defenses](),
        icp_budget=args.icp_budget,
        inline_budget=args.inline_budget,
        lax_heuristics=args.lax,
    )


def cmd_sweep(args) -> int:
    """Full-grid sweep: (budget x defense x workload x scale) cells with
    seed repetition, Pareto frontier and defense crossover analysis."""
    import dataclasses

    from repro.evaluation.sweepengine import (
        grid_from_spec,
        resolve_benches,
        run_sweep,
        run_sweep_connected,
    )

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    try:
        grid = grid_from_spec(args.grid)
        if args.seeds is not None:
            grid = dataclasses.replace(grid, seeds=args.seeds)
        benches = args.bench.split(",") if args.bench else None
        if not args.connect:
            bench_objs = resolve_benches(benches)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    log(f"sweep grid: {grid.describe()}")

    if args.connect:
        from repro.serve.client import DEFAULT_PORT, ServeClient, ServeError

        address = args.connect
        if "/" in address:
            client = ServeClient(unix=address)
        else:
            host, _, port = address.partition(":")
            client = ServeClient(
                host=host or "127.0.0.1",
                port=int(port) if port else DEFAULT_PORT,
            )
        try:
            with client:
                result = run_sweep_connected(
                    grid, client, benches=benches, log=log
                )
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"cannot reach server at {address}: {exc}", file=sys.stderr)
            return 1
    else:
        settings = _eval_settings(args)
        result = run_sweep(
            grid,
            settings,
            benches=bench_objs,
            jobs=args.jobs,
            log=log,
            prewarm=not args.no_prewarm,
        )

    # Accounting goes to stderr only: the report/CSV artifacts must be
    # byte-identical between a cold and a warm run of the same grid.
    log("sweep stats: " + json.dumps(result.stats, sort_keys=True))
    if args.csv:
        Path(args.csv).write_text(result.to_csv())
        log(f"wrote {args.csv}")
    _write_or_print(result.render_report(args.format), args.output)
    return 0


def cmd_client(args) -> int:
    """One request against a running ``repro serve`` instance."""
    from repro.serve.client import DEFAULT_PORT, ServeClient, ServeError

    client = ServeClient(
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        unix=args.unix,
        timeout=args.timeout,
    )
    benches = args.bench.split(",") if args.bench else None
    try:
        with client:
            if args.op == "ping":
                result = client.ping()
            elif args.op == "stats":
                result = client.stats()
            elif args.op == "shutdown":
                result = client.shutdown()
            elif args.op == "build":
                result = client.build(_client_config(args), args.workload)
            elif args.op == "measure":
                result = client.measure(
                    _client_config(args), benches, args.workload
                )
            elif args.op == "lint":
                result = client.lint(_client_config(args), args.workload)
            elif args.op == "security":
                result = client.security(_client_config(args), args.workload)
            else:  # pragma: no cover — argparse choices guard this
                raise SystemExit(f"unknown op {args.op!r}")
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach server: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


# -- argument wiring ----------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIBE reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build-kernel", help="build and dump the synthetic kernel")
    _add_kernel_args(p)
    p.add_argument("-o", "--output", help="output .ir file (default: stdout)")
    p.set_defaults(func=cmd_build_kernel)

    p = sub.add_parser("stats", help="static census of a kernel image")
    _add_kernel_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("profile", help="run the profiling phase")
    _add_kernel_args(p)
    p.add_argument(
        "-w", "--workload", choices=("lmbench", "apache"), default="lmbench"
    )
    p.add_argument("--iterations", type=int, default=3)
    p.add_argument("--ops-scale", type=float, default=1.0)
    p.add_argument("-o", "--output", required=True, help="profile JSON path")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("optimize", help="optimize and harden a kernel")
    _add_kernel_args(p)
    p.add_argument("-p", "--profile", help="profile JSON from `profile`")
    p.add_argument(
        "--defenses", choices=sorted(DEFENSE_CHOICES), default="all"
    )
    p.add_argument("--icp-budget", type=float, default=None)
    p.add_argument("--inline-budget", type=float, default=None)
    p.add_argument("--lax", action="store_true", help="lax size heuristics")
    p.add_argument(
        "--default-inliner",
        action="store_true",
        help="use the LLVM-style bottom-up inliner baseline",
    )
    p.add_argument("-o", "--output", help="output .ir file (default: stdout)")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("benchmark", help="measure latencies (and overheads)")
    _add_kernel_args(p)
    p.add_argument("--baseline", help="baseline kernel .ir for overheads")
    p.add_argument("--suite", choices=sorted(SUITES), default="lmbench")
    p.add_argument("--ops-scale", type=float, default=0.5)
    _add_engine_arg(p, default="compiled")
    p.set_defaults(func=cmd_benchmark)

    p = sub.add_parser("attack", help="simulate transient attacks on an image")
    _add_kernel_args(p)
    p.add_argument(
        "--vector",
        choices=("all", "spectre_v2", "ret2spec", "lvi"),
        default="all",
    )
    p.add_argument("--limit", type=int, default=3, help="attempts to show")
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("lint", help="static CFI analysis of a kernel image")
    _add_kernel_args(p)
    p.add_argument("-p", "--profile", help="profile JSON from `profile`")
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    p.add_argument(
        "-r",
        "--rules",
        action="append",
        help="rule name or code prefix to run (repeatable; default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="list registered rules"
    )
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="exit non-zero when findings at/above this severity exist",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes for sharded rule evaluation",
    )
    p.add_argument(
        "--cache-dir",
        help="incremental lint cache directory (e.g. .repro-cache)",
    )
    p.add_argument(
        "--baseline",
        help="suppression file: fail only on findings not in it",
    )
    p.add_argument(
        "--write-baseline",
        help="write a baseline accepting every current finding",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print cache-hit/shard statistics to stderr",
    )
    p.add_argument("-o", "--output", help="report file (default: stdout)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "security",
        help="residual indirect-target metrics (points-to analysis)",
    )
    _add_kernel_args(p)
    p.add_argument(
        "--sites", action="store_true", help="include per-site residuals"
    )
    p.add_argument("-o", "--output", help="report file (default: stdout)")
    p.set_defaults(func=cmd_security)

    p = sub.add_parser("hotspots", help="per-function cycle attribution")
    _add_kernel_args(p)
    p.add_argument(
        "-s", "--syscall", action="append",
        help="syscalls to drive (repeatable; default: read/write/open/pipe)",
    )
    p.add_argument("--ops", type=int, default=40)
    p.add_argument("--top", type=int, default=15)
    p.set_defaults(func=cmd_hotspots)

    p = sub.add_parser("diff", help="structural diff between two images")
    p.add_argument("before", help="baseline .ir file")
    p.add_argument("after", help="transformed .ir file")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("evaluate", help="regenerate the paper's tables")
    p.add_argument("--fast", action="store_true")
    p.add_argument(
        "-e",
        "--experiment",
        action="append",
        help="which experiment(s); default: all (e.g. -e table5 -e table6)",
    )
    _add_harness_args(p)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("cache", help="inspect the persistent result cache")
    cache_sub = p.add_subparsers(dest="action", required=True)
    p = cache_sub.add_parser(
        "stats", help="on-disk entry counts and sizes per kind"
    )
    p.add_argument(
        "--cache-dir",
        help="cache directory (default: .repro-cache)",
    )
    p.add_argument("--json", action="store_true", help="machine output")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "faults",
        help="stress the evaluation harness under an injected fault plan",
    )
    p.add_argument(
        "--plan",
        help=(
            "fault plan JSON file (default: $REPRO_FAULTS, else the "
            "built-in stress plan)"
        ),
    )
    p.add_argument(
        "--configs", type=int, default=8,
        help="measurement cells in the stress matrix (default: 8)",
    )
    _add_harness_args(p)
    p.add_argument(
        "--expect-failures", type=int, default=None,
        help=(
            "exit 0 iff exactly this many cells fail permanently "
            "(default: exit 2 on any failure)"
        ),
    )
    p.add_argument("-o", "--output", help="FailureReport JSON path")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "serve",
        help="run the persistent evaluation server (hardening-as-a-service)",
    )
    p.add_argument("--fast", action="store_true", help="small kernel/scales")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 8642; ignored with --unix)",
    )
    p.add_argument("--unix", help="serve on a unix socket path instead of TCP")
    p.add_argument(
        "--ready-file",
        help="write the listening address here once accepting (CI handshake)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="run without a disk cache (default: .repro-cache)",
    )
    _add_harness_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "sweep",
        help="full-grid sweep with Pareto frontier and crossover analysis",
    )
    p.add_argument(
        "--grid", default="fast",
        help=(
            "grid preset (fast/default/paper), JSON file, or inline JSON "
            "(fields: budgets, defenses, workloads, scales, seeds, "
            "seed_base, lax)"
        ),
    )
    p.add_argument(
        "--seeds", type=int, default=None,
        help="override the grid's seed replica count",
    )
    p.add_argument(
        "--format", choices=("text", "markdown"), default="text",
        help="report rendering",
    )
    p.add_argument(
        "--connect",
        help=(
            "sweep against a running `repro serve` (host:port or unix "
            "socket path) instead of a local harness; the server's "
            "kernel/seed replace the grid's scales/seeds dimensions"
        ),
    )
    p.add_argument(
        "--csv", help="also write the per-cell grid as CSV to this path"
    )
    p.add_argument(
        "--bench", help="comma-separated benchmark names (default: all)"
    )
    p.add_argument("--fast", action="store_true", help="reduced ops scales")
    p.add_argument(
        "--no-prewarm", action="store_true",
        help=(
            "skip the parallel prefix prewarm before each workload group "
            "(cold optimized prefixes then build lazily inline)"
        ),
    )
    _add_harness_args(p)
    p.add_argument("-o", "--output", help="report file (default: stdout)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "client", help="send one request to a running `repro serve`"
    )
    p.add_argument(
        "op",
        choices=(
            "ping", "stats", "shutdown", "build", "measure", "lint",
            "security",
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--unix", help="unix socket path of the server")
    p.add_argument("--timeout", type=float, default=300.0)
    p.add_argument(
        "--defenses", choices=sorted(DEFENSE_CHOICES), default="all",
        help="config for build/measure/lint ops",
    )
    p.add_argument("--icp-budget", type=float, default=None)
    p.add_argument("--inline-budget", type=float, default=None)
    p.add_argument("--lax", action="store_true")
    p.add_argument(
        "-w", "--workload", choices=("lmbench", "apache"), default="lmbench"
    )
    p.add_argument(
        "--bench", help="comma-separated benchmark names (measure op)"
    )
    p.set_defaults(func=cmd_client)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout consumer (e.g. `head`) went away; exit quietly like a
        # well-behaved unix tool
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
