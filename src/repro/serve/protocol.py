"""Wire protocol of the evaluation server.

Newline-delimited JSON: every request and every response is one JSON
object on one line. Requests carry a client-chosen ``id`` echoed back in
the response, so clients may pipeline — responses are written in
*completion* order, not arrival order (a cache hit overtakes a cold
evaluation on the same connection).

Request::

    {"id": 7, "op": "measure", "params": {...}}

Response::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"kind": "bad_request", "message": "..."}}

Error kinds mirror the failure taxonomy of the parallel harness
(:mod:`repro.evaluation.failures`): a cell that exhausts every recovery
path inside ``measure_many`` surfaces as a ``FailureReport`` in the
*result* (the request itself succeeded — the table has a gap), while
malformed input, unknown operations and server-side exceptions map to
the ``error`` envelope here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import PibeConfig
from repro.evaluation.cache import cache_key
from repro.hardening.defenses import DefenseConfig, NonTransientDefense
from repro.workloads.base import Benchmark
from repro.workloads.lmbench import BY_NAME, LMBENCH_BENCHMARKS

#: Bump on incompatible wire-format changes; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Stable error kinds carried in the ``error`` envelope.
ERROR_BAD_REQUEST = "bad_request"
ERROR_UNKNOWN_OP = "unknown_op"
ERROR_EXCEPTION = "exception"
ERROR_SHUTDOWN = "shutdown"

#: Operations the server understands.
OPS = (
    "ping",
    "build",
    "measure",
    "measure_many",
    "lint",
    "security",
    "stats",
    "shutdown",
)


class ProtocolError(ValueError):
    """Malformed request material (maps to ``bad_request`` on the wire)."""


# -- config codec ------------------------------------------------------------
#
# PibeConfig/DefenseConfig are frozen dataclasses; the JSON form spells
# out every field so a request is self-describing and diffable. Unknown
# fields are rejected rather than ignored — a typo'd knob silently
# falling back to a default would measure the wrong variant.


def config_to_dict(config: PibeConfig) -> Dict[str, Any]:
    """JSON form of a :class:`PibeConfig` (inverse of
    :func:`config_from_dict`)."""
    return {
        "defenses": {
            "retpolines": config.defenses.retpolines,
            "ret_retpolines": config.defenses.ret_retpolines,
            "lvi_cfi": config.defenses.lvi_cfi,
            "nontransient": sorted(
                d.value for d in config.defenses.nontransient
            ),
        },
        "icp_budget": config.icp_budget,
        "inline_budget": config.inline_budget,
        "lax_heuristics": config.lax_heuristics,
        "caller_threshold": config.caller_threshold,
        "callee_threshold": config.callee_threshold,
        "use_default_inliner": config.use_default_inliner,
        "run_dce": config.run_dce,
    }


_DEFENSE_FIELDS = {"retpolines", "ret_retpolines", "lvi_cfi", "nontransient"}
_CONFIG_FIELDS = {
    "defenses",
    "icp_budget",
    "inline_budget",
    "lax_heuristics",
    "caller_threshold",
    "callee_threshold",
    "use_default_inliner",
    "run_dce",
}


def config_from_dict(data: Any) -> PibeConfig:
    """Parse a :class:`PibeConfig` from its JSON form.

    Every field is optional (defaults match the dataclass), unknown
    fields raise :class:`ProtocolError`.
    """
    if not isinstance(data, dict):
        raise ProtocolError(f"config must be an object, got {type(data).__name__}")
    unknown = set(data) - _CONFIG_FIELDS
    if unknown:
        raise ProtocolError(f"unknown config field(s): {sorted(unknown)}")
    defense_data = data.get("defenses", {})
    if not isinstance(defense_data, dict):
        raise ProtocolError("config.defenses must be an object")
    unknown = set(defense_data) - _DEFENSE_FIELDS
    if unknown:
        raise ProtocolError(f"unknown defense field(s): {sorted(unknown)}")
    try:
        nontransient = frozenset(
            NonTransientDefense(v)
            for v in defense_data.get("nontransient", ())
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    defenses = DefenseConfig(
        retpolines=bool(defense_data.get("retpolines", False)),
        ret_retpolines=bool(defense_data.get("ret_retpolines", False)),
        lvi_cfi=bool(defense_data.get("lvi_cfi", False)),
        nontransient=nontransient,
    )
    kwargs: Dict[str, Any] = {"defenses": defenses}
    for budget in ("icp_budget", "inline_budget"):
        if budget in data:
            value = data[budget]
            if value is not None and not isinstance(value, (int, float)):
                raise ProtocolError(f"{budget} must be a number or null")
            kwargs[budget] = None if value is None else float(value)
    for flag in ("lax_heuristics", "use_default_inliner", "run_dce"):
        if flag in data:
            kwargs[flag] = bool(data[flag])
    for threshold in ("caller_threshold", "callee_threshold"):
        if threshold in data:
            if not isinstance(data[threshold], int):
                raise ProtocolError(f"{threshold} must be an integer")
            kwargs[threshold] = data[threshold]
    return PibeConfig(**kwargs)


def benches_from_names(names: Optional[List[str]]) -> Tuple[Benchmark, ...]:
    """Resolve benchmark names (default: the full LMBench suite)."""
    if names is None:
        return tuple(LMBENCH_BENCHMARKS)
    if not isinstance(names, (list, tuple)) or not names:
        raise ProtocolError("benches must be a non-empty list of names")
    try:
        return tuple(BY_NAME[name] for name in names)
    except KeyError as exc:
        raise ProtocolError(
            f"unknown benchmark {exc.args[0]!r} (known: {sorted(BY_NAME)})"
        ) from None


def workload_from_params(params: Dict[str, Any]) -> str:
    workload = params.get("workload", "lmbench")
    if workload not in ("lmbench", "apache"):
        raise ProtocolError(f"unknown workload {workload!r}")
    return workload


def measure_key(
    config: PibeConfig, benches: Tuple[Benchmark, ...], workload: str
) -> str:
    """Single-flight key for one measurement cell.

    Hashes the *semantic* request (config, bench names, workload), so
    two clients asking for the same cell — however their JSON was
    spelled — coalesce onto one evaluation.
    """
    return cache_key(
        "serve.measure",
        config_to_dict(config),
        [b.name for b in benches],
        workload,
    )


def build_key(config: PibeConfig, workload: str) -> str:
    return cache_key("serve.build", config_to_dict(config), workload)


def lint_key(
    config: PibeConfig, workload: str, rules: Optional[List[str]]
) -> str:
    return cache_key(
        "serve.lint",
        config_to_dict(config),
        workload,
        sorted(rules) if rules else None,
    )


def security_key(config: PibeConfig, workload: str) -> str:
    return cache_key("serve.security", config_to_dict(config), workload)


# -- framing -----------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    id: Any
    op: str
    params: Dict[str, Any]


def decode_request(line: bytes) -> Request:
    """Parse one request line (raises :class:`ProtocolError`)."""
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    op = data.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op'")
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    return Request(id=data.get("id"), op=op, params=params)


def encode_response(
    request_id: Any,
    result: Optional[Dict[str, Any]] = None,
    error: Optional[Tuple[str, str]] = None,
) -> bytes:
    """One response line; exactly one of ``result``/``error`` is set."""
    if error is not None:
        kind, message = error
        payload = {
            "id": request_id,
            "ok": False,
            "error": {"kind": kind, "message": message},
        }
    else:
        payload = {"id": request_id, "ok": True, "result": result}
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def encode_request(
    request_id: Any, op: str, params: Optional[Dict[str, Any]] = None
) -> bytes:
    payload: Dict[str, Any] = {"id": request_id, "op": op}
    if params:
        payload["params"] = params
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
