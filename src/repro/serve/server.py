"""The asyncio evaluation server behind ``repro serve``.

One long-lived :class:`~repro.evaluation.harness.EvalContext` holds every
piece of hot state — the generated kernel, memoized profiles and staged
optimized prefixes, the in-memory measurement memo, the
:class:`~repro.evaluation.cache.DiskCache` and the persistent worker
pool — and this server multiplexes newline-delimited JSON requests onto
it:

- **Cache-aware routing**: a ``measure`` request whose cell is already in
  the in-memory memo or the disk cache is answered inline on the event
  loop; only genuine misses are dispatched for evaluation.
- **Single-flight dedup**: concurrent identical cells (same config,
  benches, workload — keyed by :func:`repro.serve.protocol.measure_key`)
  coalesce onto one in-flight evaluation; N clients asking for the same
  cold cell cost exactly one evaluation.
- **Batched dispatch**: cells that miss queue up and a dispatcher drains
  the whole queue per round, grouping compatible cells (same benches and
  workload) into single :meth:`EvalContext.measure_many` calls — the
  fault-tolerant parallel fan-out and its persistent pool are reused
  as-is, so a burst of misses is one pool batch, not N sequential
  evaluations.
- **Failure mapping**: cells that exhaust the harness's recovery paths
  surface exactly as they do inline — per-cell ``FailureReport`` entries
  in ``measure_many`` responses, an error envelope carrying the failure
  kind (``crash``/``timeout``/``exception``) for single ``measure``
  requests. The request fails; the server (and every other cell in the
  batch) survives.

Evaluation runs on a single worker thread (``EvalContext`` is not
thread-safe; parallelism happens inside ``measure_many``'s process
pool), so the event loop stays responsive for cache hits, ``stats`` and
new connections while a batch computes.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.evaluation.failures import CellFailure
from repro.evaluation.harness import EvalContext, EvalSettings
from repro.evaluation.stats import nearest_rank
from repro.serve import protocol
from repro.serve.protocol import ProtocolError, Request
from repro.workloads.base import Benchmark

#: Per-request line limit: a measure_many over the full stress grid with
#: spelled-out configs is a few hundred KB; 8 MiB leaves headroom.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Latency samples retained per endpoint for the histogram.
HISTOGRAM_WINDOW = 10_000


@dataclass
class EndpointStats:
    """Latency/ error accounting for one operation."""

    count: int = 0
    errors: int = 0
    latencies_ms: Deque[float] = field(
        default_factory=lambda: deque(maxlen=HISTOGRAM_WINDOW)
    )

    def record(self, seconds: float, ok: bool) -> None:
        self.count += 1
        if not ok:
            self.errors += 1
        self.latencies_ms.append(seconds * 1000.0)

    def snapshot(self) -> Dict[str, Any]:
        window = sorted(self.latencies_ms)
        if not window:
            return {"count": self.count, "errors": self.errors}
        return {
            "count": self.count,
            "errors": self.errors,
            "mean_ms": round(sum(window) / len(window), 3),
            "p50_ms": round(nearest_rank(window, 0.50), 3),
            "p99_ms": round(nearest_rank(window, 0.99), 3),
        }


@dataclass
class _Cell:
    """One queued measurement cell awaiting the dispatcher."""

    key: str
    config: Any
    benches: Tuple[Benchmark, ...]
    workload: str
    future: "asyncio.Future[Tuple[Optional[Dict[str, float]], Optional[Dict[str, Any]]]]"


class ReproServer:
    """Serve build/measure/lint/stats requests against one warm context.

    Parameters
    ----------
    settings:
        Harness scale knobs; the server builds (and owns) its
        :class:`EvalContext` from them — construction generates the
        kernel, which is exactly the cold cost the server exists to pay
        once.
    host / port:
        TCP endpoint (``port=0`` picks a free port, see
        :attr:`address`). Ignored when ``unix_path`` is given.
    unix_path:
        Optional unix-domain socket path (preferred for local CI runs:
        no port races).
    """

    def __init__(
        self,
        settings: Optional[EvalSettings] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        self.settings = settings or EvalSettings()
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.ctx = EvalContext(self.settings)
        self._eval_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-eval"
        )
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._queue: List[_Cell] = []
        self._kick = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional["asyncio.Task"] = None
        self._conn_tasks: set = set()
        self._started = time.monotonic()
        self.endpoint_stats: Dict[str, EndpointStats] = {}
        #: routing counters (surfaced by the ``stats`` endpoint and
        #: asserted by the single-flight tests): ``inline_hits`` were
        #: answered on the event loop, ``single_flight_hits`` coalesced
        #: onto an in-flight evaluation, ``cells_evaluated`` actually
        #: reached the harness.
        self.counters: Dict[str, int] = {
            "requests": 0,
            "connections": 0,
            "inline_hits": 0,
            "single_flight_hits": 0,
            "cells_evaluated": 0,
            "batches": 0,
            "prefixes_prewarmed": 0,
            "errors": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> str:
        """Human/CLI-pasteable address of the listening socket."""
        if self.unix_path:
            return self.unix_path
        if self._server is not None and self._server.sockets:
            host, port = self._server.sockets[0].getsockname()[:2]
            return f"{host}:{port}"
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        self._started = time.monotonic()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        if self.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path,
                limit=MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port,
                limit=MAX_LINE_BYTES,
            )

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`stop`) arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Unstick connections parked in readline() (clients that never
        # disconnect, e.g. the one that sent the shutdown) so their
        # handlers run their cleanup here, not during loop teardown.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for cell in self._queue:
            if not cell.future.done():
                cell.future.cancel()
        self._queue.clear()
        self._eval_pool.shutdown(wait=True)
        self.ctx.close()
        if self.unix_path and os.path.exists(self.unix_path):
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass

    # -- connection plumbing ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._conn_tasks.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        tasks: set = set()

        async def respond(line: bytes) -> None:
            async with write_lock:
                writer.write(line)
                await writer.drain()

        async def run_one(raw: bytes) -> None:
            await respond(await self._handle_line(raw))

        try:
            while not self._shutdown.is_set():
                try:
                    raw = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversized line or peer reset
                if not raw:
                    break
                if not raw.strip():
                    continue
                # Pipelining: every request line runs as its own task, so
                # a cache hit overtakes a cold evaluation on the same
                # connection; responses carry ids for reassociation.
                task = asyncio.get_running_loop().create_task(run_one(raw))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass  # stop() unparking this connection; fall through to cleanup
        finally:
            self._conn_tasks.discard(asyncio.current_task())
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_line(self, raw: bytes) -> bytes:
        self.counters["requests"] += 1
        try:
            request = protocol.decode_request(raw)
        except ProtocolError as exc:
            self.counters["errors"] += 1
            return protocol.encode_response(
                None, error=(protocol.ERROR_BAD_REQUEST, str(exc))
            )
        handler = getattr(self, f"_op_{request.op}", None)
        stats = self.endpoint_stats.setdefault(request.op, EndpointStats())
        started = time.monotonic()
        if handler is None:
            stats.record(time.monotonic() - started, ok=False)
            self.counters["errors"] += 1
            return protocol.encode_response(
                request.id,
                error=(
                    protocol.ERROR_UNKNOWN_OP,
                    f"unknown op {request.op!r} (known: {list(protocol.OPS)})",
                ),
            )
        try:
            result = await handler(request)
        except ProtocolError as exc:
            stats.record(time.monotonic() - started, ok=False)
            self.counters["errors"] += 1
            return protocol.encode_response(
                request.id, error=(protocol.ERROR_BAD_REQUEST, str(exc))
            )
        except _CellFailed as exc:
            stats.record(time.monotonic() - started, ok=False)
            self.counters["errors"] += 1
            return protocol.encode_response(
                request.id, error=(exc.kind, exc.message)
            )
        except Exception as exc:  # noqa: BLE001 — mapped onto the wire
            stats.record(time.monotonic() - started, ok=False)
            self.counters["errors"] += 1
            return protocol.encode_response(
                request.id,
                error=(
                    protocol.ERROR_EXCEPTION,
                    f"{type(exc).__name__}: {exc}",
                ),
            )
        stats.record(time.monotonic() - started, ok=True)
        return protocol.encode_response(request.id, result=result)

    # -- measurement dispatch ------------------------------------------------

    async def _measure_cell(
        self, config, benches: Tuple[Benchmark, ...], workload: str
    ) -> Tuple[Dict[str, float], bool]:
        """Route one cell: inline hit, coalesce, or queue for dispatch.

        Returns ``(values, cached)``; raises :class:`_CellFailed` when
        the harness gave up on the cell.
        """
        key = protocol.measure_key(config, benches, workload)
        inflight = self._inflight.get(key)
        if inflight is None:
            cached = self.ctx.cached_measurement(config, benches, workload)
            if cached is not None:
                self.counters["inline_hits"] += 1
                return cached, True
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self._queue.append(
                _Cell(
                    key=key,
                    config=config,
                    benches=benches,
                    workload=workload,
                    future=future,
                )
            )
            self._kick.set()
        else:
            self.counters["single_flight_hits"] += 1
            future = inflight
        # shield: one waiter disconnecting must not cancel the shared
        # evaluation under everybody else.
        values, failure = await asyncio.shield(future)
        if values is None:
            failure = failure or {}
            raise _CellFailed(
                kind=failure.get("kind", protocol.ERROR_EXCEPTION),
                message=failure.get("error", "cell failed"),
            )
        return values, False

    def _measure_batch(self, configs, benches, workload: str):
        """One dispatcher round's evaluation (runs on the eval thread).

        The distinct cold optimized prefixes of the batch are prewarmed
        across the worker pool first, so the serial build_variant path
        inside ``measure_many`` loads them as disk hits instead of
        building each cold prefix in sequence. A no-op without a disk
        cache or with ``jobs <= 1``.
        """
        self.counters["prefixes_prewarmed"] += self.ctx.prewarm_prefixes(
            configs, workload
        )
        return self.ctx.measure_many(configs, benches, workload)

    async def _dispatch_loop(self) -> None:
        """Drain queued cells in rounds, one ``measure_many`` per
        compatible (benches, workload) group.

        Cells arriving while a round evaluates accumulate into the next
        round — that is the batching: a burst of misses against a busy
        server becomes one pool fan-out.
        """
        loop = asyncio.get_running_loop()
        while True:
            await self._kick.wait()
            self._kick.clear()
            batch, self._queue = self._queue, []
            if not batch:
                continue
            self.counters["batches"] += 1
            groups: Dict[Tuple[Tuple[str, ...], str], List[_Cell]] = {}
            for cell in batch:
                group_key = (tuple(b.name for b in cell.benches), cell.workload)
                groups.setdefault(group_key, []).append(cell)
            for cells in groups.values():
                self.counters["cells_evaluated"] += len(cells)
                try:
                    result = await loop.run_in_executor(
                        self._eval_pool,
                        partial(
                            self._measure_batch,
                            [c.config for c in cells],
                            cells[0].benches,
                            cells[0].workload,
                        ),
                    )
                except Exception as exc:  # noqa: BLE001 — fan the error out
                    for cell in cells:
                        self._inflight.pop(cell.key, None)
                        if not cell.future.done():
                            cell.future.set_exception(exc)
                    continue
                failures = {
                    f.index: f for f in result.failure_report.failures
                }
                for i, cell in enumerate(cells):
                    self._inflight.pop(cell.key, None)
                    if cell.future.done():
                        continue
                    failure = failures.get(i)
                    cell.future.set_result(
                        (
                            result[i],
                            _failure_dict(failure) if failure else None,
                        )
                    )

    # -- operations ----------------------------------------------------------

    async def _op_ping(self, request: Request) -> Dict[str, Any]:
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "kernel": self.ctx.kernel.name,
        }

    async def _op_measure(self, request: Request) -> Dict[str, Any]:
        config = protocol.config_from_dict(request.params.get("config", {}))
        benches = protocol.benches_from_names(request.params.get("benches"))
        workload = protocol.workload_from_params(request.params)
        values, cached = await self._measure_cell(config, benches, workload)
        return {
            "label": config.label(),
            "workload": workload,
            "results": values,
            "cached": cached,
        }

    async def _op_measure_many(self, request: Request) -> Dict[str, Any]:
        raw_configs = request.params.get("configs")
        if not isinstance(raw_configs, list) or not raw_configs:
            raise ProtocolError("measure_many needs a non-empty 'configs' list")
        configs = [protocol.config_from_dict(c) for c in raw_configs]
        benches = protocol.benches_from_names(request.params.get("benches"))
        workload = protocol.workload_from_params(request.params)
        # Enqueue every cell before the first await so the whole request
        # lands in one dispatcher round (one pool batch); duplicates and
        # concurrent identical requests coalesce through _inflight.
        waits = [
            self._measure_cell(config, benches, workload)
            for config in configs
        ]
        outcomes = await asyncio.gather(*waits, return_exceptions=True)
        results: List[Optional[Dict[str, float]]] = []
        failures: List[Dict[str, Any]] = []
        for i, (config, outcome) in enumerate(zip(configs, outcomes)):
            if isinstance(outcome, _CellFailed):
                results.append(None)
                failures.append(
                    {
                        "index": i,
                        "label": config.label(),
                        "kind": outcome.kind,
                        "error": outcome.message,
                    }
                )
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                results.append(outcome[0])
        return {
            "labels": [c.label() for c in configs],
            "workload": workload,
            "results": results,
            "failures": failures,
        }

    async def _op_build(self, request: Request) -> Dict[str, Any]:
        config = protocol.config_from_dict(request.params.get("config", {}))
        workload = protocol.workload_from_params(request.params)
        key = protocol.build_key(config, workload)
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["single_flight_hits"] += 1
            return dict(await asyncio.shield(inflight))
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(
                self._eval_pool, partial(self._build_inline, config, workload)
            )
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                # consume the error so abandoned-future warnings don't fire
                future.exception()
            raise
        else:
            future.set_result(result)
            return dict(result)
        finally:
            self._inflight.pop(key, None)

    def _build_inline(self, config, workload: str) -> Dict[str, Any]:
        """Runs on the eval thread: build (and memoize) one variant."""
        build = self.ctx.variant(config, workload)
        reports = {}
        for name, report in build.reports.items():
            summary = getattr(report, "summary", None)
            reports[name] = summary() if callable(summary) else repr(report)
        return {
            "label": build.label,
            "functions": len(build.module.functions),
            "reports": reports,
        }

    async def _op_lint(self, request: Request) -> Dict[str, Any]:
        config = protocol.config_from_dict(request.params.get("config", {}))
        workload = protocol.workload_from_params(request.params)
        rules = request.params.get("rules")
        if rules is not None and not isinstance(rules, list):
            raise ProtocolError("'rules' must be a list of rule names")
        # Single-flight: concurrent identical lints (sweep drivers batch
        # one lint per variant) coalesce onto one incremental run.
        key = protocol.lint_key(config, workload, rules)
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["single_flight_hits"] += 1
            return dict(await asyncio.shield(inflight))
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(
                self._eval_pool,
                partial(self._lint_inline, config, workload, rules),
            )
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()
            raise
        else:
            future.set_result(result)
            return dict(result)
        finally:
            self._inflight.pop(key, None)

    def _lint_inline(
        self, config, workload: str, rules: Optional[List[str]]
    ) -> Dict[str, Any]:
        """Runs on the eval thread: incrementally lint a (memoized)
        variant.  Sweep variants share an optimized prefix, so their
        function-chunk cache entries overlap heavily and most lints run
        warm; stats are surfaced so clients can see the hit rate."""
        import json as _json

        report = self.ctx.lint(config, workload, rules=rules or None)
        return {
            "label": config.label(),
            "report": _json.loads(report.to_json()),
            "stats": dict(report.stats or {}),
        }

    async def _op_security(self, request: Request) -> Dict[str, Any]:
        config = protocol.config_from_dict(request.params.get("config", {}))
        workload = protocol.workload_from_params(request.params)
        # Single-flight like build/lint: a sweep client asks for the
        # metrics of every grid variant, and concurrent identical
        # requests must cost one analysis of one memoized build.
        key = protocol.security_key(config, workload)
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["single_flight_hits"] += 1
            return dict(await asyncio.shield(inflight))
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(
                self._eval_pool,
                partial(self._security_inline, config, workload),
            )
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                future.exception()
            raise
        else:
            future.set_result(result)
            return dict(result)
        finally:
            self._inflight.pop(key, None)

    def _security_inline(self, config, workload: str) -> Dict[str, Any]:
        """Runs on the eval thread: residual-target metrics of a
        (memoized) variant — the security axis of sweep Pareto plots."""
        from repro.analysis.security import security_metrics

        build = self.ctx.variant(config, workload)
        metrics = security_metrics(build.module, label=config.label())
        return {
            "label": config.label(),
            "workload": workload,
            "metrics": {
                "air": metrics.air,
                "residual_total": metrics.residual_total,
                "residual_mean": metrics.residual_mean,
            },
            "detail": metrics.to_dict(),
        }

    async def _op_stats(self, request: Request) -> Dict[str, Any]:
        cache = self.ctx.cache
        cache_stats: Optional[Dict[str, Any]] = None
        if cache is not None:
            usage = cache.disk_usage()
            usage.pop("quarantine", None)
            quarantined = 0
            if cache.quarantine_dir().is_dir():
                quarantined = sum(
                    1 for _ in cache.quarantine_dir().glob("*.json")
                )
            cache_stats = {
                "root": str(cache.root),
                "counters": cache.stats(),
                "disk": usage,
                "quarantined": quarantined,
            }
        return {
            "server": {
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "address": self.address,
                "counters": dict(sorted(self.counters.items())),
                "inflight": len(self._inflight),
                "queued": len(self._queue),
                "endpoints": {
                    op: self.endpoint_stats[op].snapshot()
                    for op in sorted(self.endpoint_stats)
                },
            },
            "cache": cache_stats,
            "pipeline": self.ctx.pipeline.prefix_cache_info(),
            "settings": {
                "spec": type(self.settings.spec).__name__,
                "engine": self.settings.engine,
                "jobs": self.settings.jobs,
                "seed": self.settings.seed,
            },
        }

    async def _op_shutdown(self, request: Request) -> Dict[str, Any]:
        # Reply first, then trip the event: serve_until_shutdown handles
        # the actual teardown after this response is written.
        asyncio.get_running_loop().call_soon(self._shutdown.set)
        return {"stopping": True}


@dataclass
class _CellFailed(Exception):
    """A cell the harness permanently gave up on (maps to the error
    envelope with the harness failure kind)."""

    kind: str
    message: str


def _failure_dict(failure: CellFailure) -> Dict[str, Any]:
    return {
        "label": failure.label,
        "kind": failure.kind,
        "attempts": failure.attempts,
        "error": failure.error,
    }


async def _amain(server: ReproServer) -> None:
    await server.start()
    await server.serve_until_shutdown()


def run_server(server: ReproServer) -> None:
    """Blocking entry point used by the CLI."""
    try:
        asyncio.run(_amain(server))
    except KeyboardInterrupt:
        pass
