"""Hardening-as-a-service: a long-running evaluation server.

Every CLI invocation re-pays kernel generation, prefix builds and cache
warm-up even though all of that is memoizable. ``repro serve`` keeps the
hot state resident — the generated kernel, staged optimized prefixes,
compiled engine programs and the :class:`~repro.evaluation.cache.DiskCache`
measurement store all live inside one long-lived
:class:`~repro.evaluation.harness.EvalContext` — and answers newline-
delimited JSON requests over TCP or a unix socket.

- :mod:`repro.serve.protocol` — wire format, config codec, error taxonomy;
- :mod:`repro.serve.server` — the asyncio server: single-flight dedup,
  batched dispatch into the persistent worker pool, cache-aware routing;
- :mod:`repro.serve.client` — a synchronous client (used by the ``repro
  client`` CLI, the load-generator benchmark and the tests).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    config_from_dict,
    config_to_dict,
)
from repro.serve.server import ReproServer

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "config_from_dict",
    "config_to_dict",
]
