"""Synchronous client for the evaluation server.

One :class:`ServeClient` wraps one connection; requests are issued
sequentially (``request`` blocks until the matching response arrives).
Concurrency comes from multiple clients — the load-generator benchmark
runs one per worker thread, which also matches how real CLI users hit a
shared server.

Usage::

    with ServeClient(unix="/tmp/repro.sock") as client:
        client.ping()
        values = client.measure(config, benches=["null", "read"])
        print(client.stats()["server"]["counters"])
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

from repro.core.config import PibeConfig
from repro.serve import protocol

#: Default TCP port (``repro serve`` without ``--port``); unregistered.
DEFAULT_PORT = 8642


class ServeError(RuntimeError):
    """An error envelope from the server (or a transport failure)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message


class ServeClient:
    """Blocking newline-delimited-JSON client.

    Parameters mirror the server: give ``unix`` a socket path, or
    ``host``/``port`` for TCP. The connection is opened lazily on the
    first request (or explicitly via :meth:`connect`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        unix: Optional[str] = None,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.unix = unix
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._recv_file = None
        self._next_id = 0

    # -- connection management ----------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        if self.unix:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.unix)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        self._sock = sock
        self._recv_file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._recv_file is not None:
            try:
                self._recv_file.close()
            except OSError:
                pass
            self._recv_file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing ---------------------------------------------------

    def request(
        self, op: str, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send one request and return its ``result`` (raises
        :class:`ServeError` on an error envelope)."""
        self.connect()
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(protocol.encode_request(request_id, op, params))
        while True:
            line = self._recv_file.readline()
            if not line:
                raise ServeError("transport", "server closed the connection")
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise ServeError("transport", f"undecodable response: {exc}")
            if payload.get("id") != request_id:
                # A response to a request this client never sent — with
                # sequential issue that means a server bug; fail loudly.
                raise ServeError(
                    "transport", f"response id mismatch: {payload.get('id')!r}"
                )
            if not payload.get("ok"):
                error = payload.get("error") or {}
                raise ServeError(
                    error.get("kind", "unknown"),
                    error.get("message", "unspecified error"),
                )
            return payload.get("result") or {}

    # -- convenience wrappers ------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def build(
        self, config: PibeConfig, workload: str = "lmbench"
    ) -> Dict[str, Any]:
        return self.request(
            "build",
            {"config": protocol.config_to_dict(config), "workload": workload},
        )

    def measure(
        self,
        config: PibeConfig,
        benches: Optional[List[str]] = None,
        workload: str = "lmbench",
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "config": protocol.config_to_dict(config),
            "workload": workload,
        }
        if benches is not None:
            params["benches"] = list(benches)
        return self.request("measure", params)

    def measure_many(
        self,
        configs: List[PibeConfig],
        benches: Optional[List[str]] = None,
        workload: str = "lmbench",
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "configs": [protocol.config_to_dict(c) for c in configs],
            "workload": workload,
        }
        if benches is not None:
            params["benches"] = list(benches)
        return self.request("measure_many", params)

    def security(
        self, config: PibeConfig, workload: str = "lmbench"
    ) -> Dict[str, Any]:
        """Residual-target security metrics of one variant (the sweep
        engine's security axis in connect mode)."""
        return self.request(
            "security",
            {"config": protocol.config_to_dict(config), "workload": workload},
        )

    def lint(
        self,
        config: PibeConfig,
        workload: str = "lmbench",
        rules: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        params: Dict[str, Any] = {
            "config": protocol.config_to_dict(config),
            "workload": workload,
        }
        if rules is not None:
            params["rules"] = list(rules)
        return self.request("lint", params)
