"""repro — a Python reproduction of PIBE (ASPLOS 2021).

PIBE: Practical Kernel Control-Flow Hardening with Profile-Guided Indirect
Branch Elimination (Duta, Giuffrida, Bos, van der Kouwe).

Quickstart::

    from repro import (
        PibeConfig, PibePipeline, DefenseConfig,
        build_kernel, lmbench_workload,
    )

    kernel = build_kernel()
    pipeline = PibePipeline(kernel)
    profile = pipeline.profile(lmbench_workload(), iterations=3)
    build = pipeline.build_variant(
        PibeConfig.lax(DefenseConfig.all_defenses()), profile
    )

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
harnesses regenerating every table of the paper's evaluation.
"""

from repro.core import (
    BuildResult,
    OverheadReport,
    PibeConfig,
    PibePipeline,
    geomean_overhead,
    overhead,
)
from repro.hardening import Defense, DefenseConfig, HardeningPass
from repro.kernel import DEFAULT_SPEC, KernelSpec, build_kernel, kernel_stats
from repro.profiling import EdgeProfile, KernelProfiler, lift_profile
from repro.workloads import (
    LMBENCH_BENCHMARKS,
    apachebench_workload,
    lmbench_workload,
    measure_benchmark,
    measure_suite,
    profile_workload,
)

__version__ = "1.0.0"

__all__ = [
    "BuildResult",
    "DEFAULT_SPEC",
    "Defense",
    "DefenseConfig",
    "EdgeProfile",
    "HardeningPass",
    "KernelProfiler",
    "KernelSpec",
    "LMBENCH_BENCHMARKS",
    "OverheadReport",
    "PibeConfig",
    "PibePipeline",
    "__version__",
    "apachebench_workload",
    "build_kernel",
    "geomean_overhead",
    "kernel_stats",
    "lift_profile",
    "lmbench_workload",
    "measure_benchmark",
    "measure_suite",
    "overhead",
    "profile_workload",
]
