"""Workload-robustness analysis (paper Section 8.4).

Quantifies how much of one workload's optimization-candidate weight a
*different* training workload would also have selected — the paper reports
58% shared indirect-call-promotion weight and 67% shared inlining weight
between the Apache and LMBench workloads at a 99% budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.profiling.profile_data import EdgeProfile


def _budget_prefix(
    weighted_sites: List[Tuple[int, float]], budget: float
) -> Set[int]:
    """Site ids in the hottest prefix covering ``budget`` of total weight."""
    ordered = sorted(weighted_sites, key=lambda sw: (-sw[1], sw[0]))
    total = sum(w for _, w in ordered)
    if total <= 0:
        return set()
    limit = total * budget
    prefix: Set[int] = set()
    cumulative = 0.0
    for site, weight in ordered:
        if cumulative >= limit:
            break
        prefix.add(site)
        cumulative += weight
    return prefix


def icp_candidates(profile: EdgeProfile, budget: float) -> Set[int]:
    """Indirect sites an ICP pass at ``budget`` would touch."""
    weighted = [
        (site, float(sum(targets.values())))
        for site, targets in profile.indirect.items()
    ]
    return _budget_prefix(weighted, budget)


def inline_candidates(profile: EdgeProfile, budget: float) -> Set[int]:
    """Direct sites an inlining pass at ``budget`` would consider."""
    weighted = [(site, float(count)) for site, count in profile.direct.items()]
    return _budget_prefix(weighted, budget)


@dataclass
class OverlapReport:
    """Shared candidate weight between a reference and a foreign profile."""

    budget: float
    icp_shared_weight_fraction: float
    inline_shared_weight_fraction: float
    icp_shared_sites: int
    inline_shared_sites: int


def workload_overlap(
    reference: EdgeProfile, other: EdgeProfile, budget: float = 0.99
) -> OverlapReport:
    """Fraction of the reference workload's candidate weight that the other
    workload's candidate set covers (the paper's 58% / 67% experiment)."""
    ref_icp = icp_candidates(reference, budget)
    oth_icp = icp_candidates(other, budget)
    ref_inline = inline_candidates(reference, budget)
    oth_inline = inline_candidates(other, budget)

    def shared_weight(
        ref_sites: Set[int], other_sites: Set[int], weights: Dict[int, float]
    ) -> float:
        total = sum(weights.get(s, 0.0) for s in ref_sites)
        if total <= 0:
            return 0.0
        shared = sum(weights.get(s, 0.0) for s in ref_sites & other_sites)
        return shared / total

    icp_weights = {
        site: float(sum(t.values())) for site, t in reference.indirect.items()
    }
    inline_weights = {s: float(c) for s, c in reference.direct.items()}
    return OverlapReport(
        budget=budget,
        icp_shared_weight_fraction=shared_weight(ref_icp, oth_icp, icp_weights),
        inline_shared_weight_fraction=shared_weight(
            ref_inline, oth_inline, inline_weights
        ),
        icp_shared_sites=len(ref_icp & oth_icp),
        inline_shared_sites=len(ref_inline & oth_inline),
    )
