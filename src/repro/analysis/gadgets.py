"""Security-census analyses: indirect-branch gadget counting
(paper Tables 4, 8, 10 and 11)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.hardening.defenses import LVI_SAFE, RSB_SAFE, SPECTRE_V2_SAFE
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode
from repro.passes.icp import ICPReport
from repro.passes.inliner import InlineReport
from repro.profiling.profile_data import EdgeProfile


def target_count_distribution(profile: EdgeProfile) -> Dict[str, int]:
    """Table 4: number of profiled indirect call sites per observed-target
    count (buckets 1..6 and '>6')."""
    counts = Counter()
    for site, targets in profile.indirect.items():
        n = len(targets)
        key = str(n) if n <= 6 else ">6"
        counts[key] += 1
    return {
        **{str(i): counts.get(str(i), 0) for i in range(1, 7)},
        ">6": counts.get(">6", 0),
    }


@dataclass
class EliminationStats:
    """Table 8 row: gadgets eliminated at one budget."""

    budget: float
    icp_weight: int
    icp_weight_fraction: float
    icp_sites: int
    icp_sites_fraction: float
    icp_targets: int
    icp_targets_fraction: float
    return_weight: int
    return_weight_fraction: float
    return_sites: int
    return_sites_fraction: float


def elimination_stats(
    budget: float,
    icp_report: ICPReport,
    inline_report: InlineReport,
    total_return_sites: int,
) -> EliminationStats:
    """Combine the pass reports into the Table 8 measurements."""
    return EliminationStats(
        budget=budget,
        icp_weight=icp_report.promoted_weight,
        icp_weight_fraction=icp_report.weight_fraction,
        icp_sites=icp_report.promoted_sites,
        icp_sites_fraction=icp_report.site_fraction,
        icp_targets=icp_report.promoted_targets,
        icp_targets_fraction=icp_report.target_fraction,
        return_weight=inline_report.returns_elided_weight,
        return_weight_fraction=inline_report.elided_weight_fraction,
        return_sites=inline_report.returns_elided_sites,
        return_sites_fraction=(
            inline_report.returns_elided_sites / total_return_sites
            if total_return_sites
            else 0.0
        ),
    )


@dataclass
class CandidateStats:
    """Table 10 row: candidates relative to all kernel indirect branches."""

    budget: float
    total_icalls: int
    icp_candidates: int
    total_returns: int
    inline_candidates: int

    @property
    def icp_fraction(self) -> float:
        return self.icp_candidates / self.total_icalls if self.total_icalls else 0.0

    @property
    def inline_fraction(self) -> float:
        return (
            self.inline_candidates / self.total_returns
            if self.total_returns
            else 0.0
        )


def candidate_stats(
    budget: float,
    module_icalls: int,
    module_returns: int,
    icp_report: ICPReport,
    inline_report: InlineReport,
) -> CandidateStats:
    """Assemble the Table 10 measurements from the pass reports."""
    return CandidateStats(
        budget=budget,
        total_icalls=module_icalls,
        icp_candidates=icp_report.promoted_sites,
        total_returns=module_returns,
        inline_candidates=inline_report.candidate_sites,
    )


@dataclass
class ForwardEdgeCensus:
    """Table 11 row: forward-edge protection census of one image."""

    defended_icalls: int = 0
    vulnerable_icalls: int = 0
    vulnerable_ijumps: int = 0
    defended_ijumps: int = 0

    @property
    def total_icalls(self) -> int:
        return self.defended_icalls + self.vulnerable_icalls


def forward_edge_census(module: Module) -> ForwardEdgeCensus:
    """Count protected vs Spectre-V2/LVI-vulnerable forward edges in a
    hardened image (boot-only code exempt, as in the paper)."""
    census = ForwardEdgeCensus()
    for func in module:
        boot_only = func.has_attr(FunctionAttr.BOOT_ONLY)
        for inst in func.instructions():
            if inst.opcode == Opcode.ICALL:
                tag = inst.defense
                if tag is not None and tag in SPECTRE_V2_SAFE and tag in LVI_SAFE:
                    census.defended_icalls += 1
                elif boot_only:
                    continue
                else:
                    census.vulnerable_icalls += 1
            elif inst.opcode == Opcode.IJUMP:
                tag = inst.defense
                if tag is not None and tag in SPECTRE_V2_SAFE:
                    census.defended_ijumps += 1
                elif boot_only:
                    continue
                else:
                    census.vulnerable_ijumps += 1
    return census


def backward_edge_census(module: Module) -> Dict[str, int]:
    """Return-instruction protection census (Section 8.6's claim that all
    non-boot returns end up protected)."""
    result = {"protected": 0, "vulnerable": 0, "boot_only": 0}
    for func in module:
        boot_only = func.has_attr(FunctionAttr.BOOT_ONLY)
        for inst in func.instructions():
            if inst.opcode != Opcode.RET:
                continue
            if boot_only:
                result["boot_only"] += 1
            elif inst.defense is not None and inst.defense in RSB_SAFE:
                result["protected"] += 1
            else:
                result["vulnerable"] += 1
    return result
