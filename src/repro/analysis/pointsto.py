"""Andersen-style flow-insensitive function-pointer points-to analysis.

The feasible-target rule (``PIBE2xx``) bounds every indirect call by a
*global* census: any address-taken function with a matching signature
may be called anywhere.  That is the FineIBT/coarse-CFI bound.  This
module computes a strictly tighter, still sound, per-site bound by
actually propagating function-pointer *values* through the IR:

- **table loads** — an ``ICALL`` that declares its source table
  (``!fptr_table``) can only dispatch to that table's entries, and the
  table's entries flow into the containing function's pointer
  environment;
- **calls** — passing arguments forwards the caller's pointer
  environment into the callee (both along direct edges and along
  already-resolved indirect edges, interleaved with the fixpoint);
- **returns** — a callee's pointer environment flows back to every
  caller;
- **moves** — the IR has no first-class pointer locals; intra-function
  moves are subsumed by the per-function environment (flow-insensitive
  join of everything the function can hold).

Soundness anchors (the properties the hypothesis suite checks):

- every site's feasible set contains its interpreter ground truth
  (``!targets``) and every profile-observed target — the analysis may
  *never* rule out an edge that actually executes;
- with the address-taken census defined (the module declares pointer
  tables), every feasible set is a subset of the census: the analysis
  refines the PIBE2xx universe, it cannot invent targets outside it.

Unknowns degrade to ⊤ (top), never to ∅: inline-asm functions can
fabricate pointers, asm call sites dispatch values the IR cannot see —
both force the affected sets to the census bound (or to "unknown" when
no census exists).

The expensive constraint solve only runs when a module contains an
indirect call that does *not* declare its table; the generated kernels
declare a table at every site, so linting them takes the O(sites)
fast path.  Results are memoized per module object and invalidated by
``module.version``.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.module import Module
from repro.ir.types import (
    ATTR_ASM_SITE,
    ATTR_FPTR_TABLE,
    ATTR_TARGETS,
    ATTR_VALUE_PROFILE,
    Opcode,
)

#: Modules larger than this with undeclared icall sites skip the
#: whole-module constraint solve and take the census bound at those
#: sites instead (sound, less precise). Keeps pathological inputs from
#: turning lint quadratic; the generated kernels never hit this (every
#: site declares its table).
SOLVE_FUNCTION_LIMIT = 4096


@dataclass(frozen=True)
class SiteTargets:
    """Resolved target information for one indirect call site."""

    site_id: int
    function: str
    block: str
    num_args: int
    #: declared ``!fptr_table`` name, if any
    table: Optional[str]
    #: inline-asm site (``!asm``) — the IR cannot see its dispatch value
    asm: bool
    #: interpreter ground truth ∪ profile-observed targets (defined only)
    truth: FrozenSet[str]
    #: raw data-flow set before signature filtering; ``None`` = ⊤
    flow: Optional[FrozenSet[str]]
    #: final sound may-target set; ``None`` = unbounded (no census to
    #: fall back on)
    feasible: Optional[FrozenSet[str]]
    #: True when flow hit ⊤ and ``feasible`` fell back to the census
    census_fallback: bool

    @property
    def bounded(self) -> bool:
        return self.feasible is not None


@dataclass
class PointsToResult:
    """Whole-module analysis result, one :class:`SiteTargets` per ICALL."""

    module_name: str
    census: FrozenSet[str]
    census_known: bool
    sites: Dict[int, SiteTargets] = field(default_factory=dict)
    #: functions that participated in the constraint solve (0 = every
    #: site declared its table and the solve was skipped)
    solved_functions: int = 0

    def site(self, site_id: int) -> Optional[SiteTargets]:
        return self.sites.get(site_id)

    def feasible_targets(self, site_id: int) -> Optional[FrozenSet[str]]:
        st = self.sites.get(site_id)
        return st.feasible if st is not None else None

    def digest(self) -> str:
        """Content hash of every resolved site (stable across runs)."""
        payload = {
            "census": sorted(self.census),
            "census_known": self.census_known,
            "sites": [
                [
                    st.site_id,
                    st.function,
                    st.num_args,
                    st.table,
                    st.asm,
                    sorted(st.truth),
                    sorted(st.flow) if st.flow is not None else None,
                    sorted(st.feasible) if st.feasible is not None else None,
                    st.census_fallback,
                ]
                for _, st in sorted(self.sites.items())
            ],
        }
        blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- per-module memoization ---------------------------------------------------

_MEMO: "weakref.WeakKeyDictionary[Module, Tuple[int, PointsToResult]]" = (
    weakref.WeakKeyDictionary()
)
_DIGEST_MEMO: "weakref.WeakKeyDictionary[Module, Tuple[int, str]]" = (
    weakref.WeakKeyDictionary()
)


def analyze_pointsto(module: Module) -> PointsToResult:
    """Memoized points-to analysis of ``module`` (see module docstring)."""
    cached = _MEMO.get(module)
    if cached is not None and cached[0] == module.version:
        return cached[1]
    result = _analyze(module)
    try:
        _MEMO[module] = (module.version, result)
    except TypeError:  # pragma: no cover - unweakrefable module stand-ins
        pass
    return result


def pointsto_inputs_digest(module: Module) -> str:
    """Hash of everything the solver reads — defense-tag *insensitive*.

    Hardening only stamps defense tags on branches; it does not move
    pointers.  Keying lint caches on this digest therefore lets every
    variant of one optimized prefix share points-to-derived cache
    entries, and lets a fully-warm lint skip the solve entirely.
    """
    cached = _DIGEST_MEMO.get(module)
    if cached is not None and cached[0] == module.version:
        return cached[1]
    sites = []
    edges = []
    for func in module:
        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode == Opcode.ICALL:
                    sites.append(
                        [
                            inst.site_id,
                            func.name,
                            inst.num_args,
                            inst.attrs.get(ATTR_FPTR_TABLE),
                            bool(inst.attrs.get(ATTR_ASM_SITE)),
                            sorted((inst.attrs.get(ATTR_TARGETS) or {})),
                            sorted(
                                t
                                for t, _ in (
                                    inst.attrs.get(ATTR_VALUE_PROFILE) or []
                                )
                            ),
                        ]
                    )
                elif inst.opcode == Opcode.CALL and inst.callee:
                    edges.append([func.name, inst.callee, inst.num_args])
    payload = {
        "tables": {
            name: sorted(t.entries)
            for name, t in sorted(module.fptr_tables.items())
        },
        "functions": sorted(
            (f.name, f.num_params, f.is_instrumentable) for f in module
        ),
        "sites": sorted(sites),
        "edges": sorted(edges),
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    try:
        _DIGEST_MEMO[module] = (module.version, digest)
    except TypeError:  # pragma: no cover
        pass
    return digest


# -- the analysis -------------------------------------------------------------


@dataclass
class _Site:
    inst: object
    function: str
    block: str


def _collect_sites(module: Module) -> List[_Site]:
    out: List[_Site] = []
    for func in module:
        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode == Opcode.ICALL:
                    out.append(_Site(inst, func.name, block.label))
    return out


def _truth_targets(inst, module: Module) -> FrozenSet[str]:
    """Ground-truth ∪ profile-observed targets that are defined."""
    names: Set[str] = set()
    for t in inst.attrs.get(ATTR_TARGETS) or {}:
        if t in module:
            names.add(t)
    for t, _count in inst.attrs.get(ATTR_VALUE_PROFILE) or []:
        if t in module:
            names.add(t)
    return frozenset(names)


def _arity_filter(
    names: FrozenSet[str], num_args: int, params: Dict[str, int]
) -> FrozenSet[str]:
    return frozenset(
        n for n in names if params.get(n, num_args) == num_args
    )


def _analyze(module: Module) -> PointsToResult:
    census = module.address_taken()
    census_known = bool(module.fptr_tables)
    params = {f.name: f.num_params for f in module}
    table_sets = {
        name: frozenset(e for e in t.entries if e in module)
        for name, t in module.fptr_tables.items()
    }
    sites = _collect_sites(module)

    # The constraint solve is only needed to bound sites that neither
    # declare a table nor are asm (asm sites go straight to the census
    # bound — the IR cannot see their dispatch value).
    needs_solve = any(
        s.inst.attrs.get(ATTR_FPTR_TABLE) not in table_sets
        and not s.inst.attrs.get(ATTR_ASM_SITE)
        for s in sites
    )
    holds: Dict[str, Optional[FrozenSet[str]]] = {}
    solved = 0
    if needs_solve and len(module) <= SOLVE_FUNCTION_LIMIT:
        holds = _solve_holds(module, census, census_known, params, table_sets)
        solved = len(holds)
    elif needs_solve:
        # Bail out: every undeclared site takes the census bound (⊤).
        holds = {f.name: None for f in module}

    result = PointsToResult(
        module_name=module.name,
        census=census,
        census_known=census_known,
        solved_functions=solved,
    )
    census_bound = census if census_known else None

    for s in sites:
        inst = s.inst
        truth = _truth_targets(inst, module)
        table_name = inst.attrs.get(ATTR_FPTR_TABLE)
        asm = bool(inst.attrs.get(ATTR_ASM_SITE))
        flow: Optional[FrozenSet[str]]
        fallback = False
        if table_name in table_sets:
            # The site loads its pointer out of a declared table: the
            # table's (defined) entries are the exact value domain.
            flow = table_sets[table_name]
        elif asm:
            flow = None
        else:
            flow = holds.get(s.function)

        if flow is not None:
            feasible: Optional[FrozenSet[str]] = (
                _arity_filter(flow, inst.num_args, params) | truth
            )
        elif census_bound is not None:
            fallback = True
            feasible = (
                _arity_filter(census_bound, inst.num_args, params) | truth
            )
        else:
            feasible = None  # unbounded: no flow facts, no census

        result.sites[inst.site_id] = SiteTargets(
            site_id=inst.site_id,
            function=s.function,
            block=s.block,
            num_args=inst.num_args,
            table=table_name if table_name in table_sets else None,
            asm=asm,
            truth=truth,
            flow=flow,
            feasible=feasible,
            census_fallback=fallback,
        )
    return result


def _solve_holds(
    module: Module,
    census: FrozenSet[str],
    census_known: bool,
    params: Dict[str, int],
    table_sets: Dict[str, FrozenSet[str]],
) -> Dict[str, Optional[FrozenSet[str]]]:
    """Fixpoint over per-function pointer environments.

    Two set-valued facts per function ``f``:

    - ``arg[f]``  — pointers reaching ``f`` through its parameters;
    - ``hold[f]`` — every pointer ``f`` can hold (args ∪ table loads ∪
      callee returns ∪ ground-truth seeds).

    ``None`` is ⊤.  Edges: ``arg[f] ⊆ hold[f]``; for every call edge
    ``g → h``: ``hold[g] ⊆ arg[h]`` when the call passes arguments, and
    ``hold[h] ⊆ hold[g]`` always (return-value flow).  Indirect call
    edges resolve against the current solution and are re-derived every
    round, so the callee set and the environments grow together to a
    mutual fixpoint (standard Andersen dynamics).  Inline-asm functions
    seed at ⊤.  Naive iteration is fine at the scale this path runs —
    declared-table kernels never enter it.
    """
    TOP = None
    arg: Dict[str, Optional[Set[str]]] = {}
    hold: Dict[str, Optional[Set[str]]] = {}
    for func in module:
        if func.is_instrumentable:
            arg[func.name] = set()
            hold[func.name] = set()
        else:
            arg[func.name] = TOP
            hold[func.name] = TOP

    # Static seeds: table loads and ground-truth/profile targets.
    calls: Dict[str, List[Tuple[str, int]]] = {f.name: [] for f in module}
    icalls: Dict[str, List[object]] = {f.name: [] for f in module}
    for func in module:
        for block in func.blocks.values():
            for inst in block.instructions:
                if inst.opcode == Opcode.ICALL:
                    icalls[func.name].append(inst)
                    if hold[func.name] is TOP:
                        continue
                    t = inst.attrs.get(ATTR_FPTR_TABLE)
                    if t in table_sets:
                        hold[func.name].update(table_sets[t])
                    hold[func.name].update(_truth_targets(inst, module))
                elif inst.opcode == Opcode.CALL and inst.callee in params:
                    calls[func.name].append((inst.callee, inst.num_args))

    def union_into(
        dst: Dict[str, Optional[Set[str]]], key: str, src: Optional[Set[str]]
    ) -> bool:
        cur = dst[key]
        if cur is TOP:
            return False
        if src is TOP:
            dst[key] = TOP
            return True
        if src is None or src <= cur:
            return False
        cur |= src
        return True

    def site_callees(owner: str, inst) -> Optional[Set[str]]:
        """Current candidate callees of an icall (None = ⊤-driven)."""
        t = inst.attrs.get(ATTR_FPTR_TABLE)
        if t in table_sets:
            cands: Optional[Set[str]] = set(table_sets[t])
        elif inst.attrs.get(ATTR_ASM_SITE) or hold[owner] is TOP:
            cands = set(census) if census_known else None
        else:
            cands = set(hold[owner])
        truth = _truth_targets(inst, module)
        if cands is None:
            cands = set(truth)
        else:
            cands |= truth
        return {
            c
            for c in cands
            if c in params and params[c] == inst.num_args
        }

    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > 4 * (len(params) + 1):  # pragma: no cover - safety net
            break
        for func in module:
            g = func.name
            edges: List[Tuple[str, int]] = list(calls[g])
            for inst in icalls[g]:
                for h in site_callees(g, inst):
                    edges.append((h, inst.num_args))
            for h, num_args in edges:
                if num_args > 0:
                    changed |= union_into(arg, h, hold[g])
                changed |= union_into(hold, g, hold[h])
            changed |= union_into(hold, g, arg[g])

    return {
        name: (frozenset(v) if v is not TOP else None)
        for name, v in hold.items()
    }
