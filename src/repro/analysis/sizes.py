"""Image-size and memory-usage model (paper Table 12).

- **text size**: lowered instruction units (IR size plus per-site defense
  expansion plus shared thunks) times the average instruction size.
- **mem size**: kernel text is mapped in large pages, so the resident code
  memory grows in page-granular steps — the paper's 0% / 12.5% / 25%
  staircase. We use a configurable page granularity scaled to the
  synthetic kernel.
- **slab / dyn size**: the paper reads these from ``/proc`` while running
  LMBench. We model their dominant inlining-sensitive component: merged
  stack frames (Rule 2's concern) change per-task stack usage, while slab
  usage barely moves. Substitution documented in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hardening.lowering import (
    THUNK_UNITS,
    required_thunks,
    site_expansion_units,
)
from repro.ir.module import Module
from repro.ir.types import INSTRUCTION_SIZE_BYTES

#: Large-page granularity for resident-text accounting, scaled to the
#: synthetic kernel (Linux uses 2 MiB pages for ~30 MiB of text; we use
#: 32 KiB pages for ~150 KiB of text).
MEM_PAGE_BYTES = 32 * 1024

#: Baseline slab footprint (op tables, descriptors — barely affected by
#: code transformations).
BASE_SLAB_BYTES = 512 * 1024


def text_size_bytes(module: Module) -> int:
    """Lowered image text size including defense expansion and thunks."""
    units = 0
    tags = set()
    for func in module:
        units += func.size()
        for inst in func.instructions():
            tag = inst.attrs.get("defense")
            if tag is not None:
                units += site_expansion_units(inst)
                tags.add(tag)
    for thunk in required_thunks(sorted(tags)):
        units += THUNK_UNITS[thunk]
    return units * INSTRUCTION_SIZE_BYTES


def mem_size_bytes(module: Module, page_bytes: int = MEM_PAGE_BYTES) -> int:
    """Resident kernel-code memory at startup (page-quantized text)."""
    text = text_size_bytes(module)
    return int(math.ceil(text / page_bytes)) * page_bytes


def slab_size_bytes(module: Module) -> int:
    """Startup slab usage: op-table/descriptor metadata plus a fixed base."""
    table_bytes = sum(
        64 * len(table.entries) for table in module.fptr_tables.values()
    )
    per_function_metadata = 16 * len(module.functions)
    return BASE_SLAB_BYTES + table_bytes + per_function_metadata


def peak_stack_bytes(module: Module) -> int:
    """Static worst-case stack depth proxy: the deepest frame chain is not
    derivable cheaply, so we use the sum of the largest frames (inlining
    merges frames, growing this — the dyn-size effect of Rule 2)."""
    frames = sorted(
        (f.stack_frame_size for f in module.functions.values()), reverse=True
    )
    return sum(frames[:16])


@dataclass
class SizeReport:
    """Table 12 measurements for one image vs its two baselines."""

    label: str
    text_bytes: int
    #: vs the vanilla LTO image (paper's "abs. size")
    abs_size_increase: float
    #: vs the unoptimized image with the same defenses ("img size")
    img_size_increase: float
    #: page-quantized resident code memory increase ("mem size")
    mem_size_increase: float
    #: slab usage increase ("slab size")
    slab_size_increase: float
    #: dynamic (stack) usage increase ("dyn size")
    dyn_size_increase: float


def size_report(
    label: str,
    variant: Module,
    lto_baseline: Module,
    unoptimized_same_config: Module,
    measured_dyn: "Optional[Tuple[float, float]]" = None,
) -> SizeReport:
    """Assemble one Table 12 row.

    ``measured_dyn`` optionally supplies dynamically measured peak-stack
    bytes as ``(variant, unoptimized)``; otherwise the static proxy is
    used.
    """

    def rel(new: float, old: float) -> float:
        return new / old - 1.0 if old else 0.0

    if measured_dyn is not None:
        dyn_increase = rel(measured_dyn[0], measured_dyn[1])
    else:
        dyn_increase = rel(
            peak_stack_bytes(variant),
            peak_stack_bytes(unoptimized_same_config),
        )
    return SizeReport(
        label=label,
        text_bytes=text_size_bytes(variant),
        abs_size_increase=rel(
            text_size_bytes(variant), text_size_bytes(lto_baseline)
        ),
        img_size_increase=rel(
            text_size_bytes(variant),
            text_size_bytes(unoptimized_same_config),
        ),
        mem_size_increase=rel(
            mem_size_bytes(variant), mem_size_bytes(unoptimized_same_config)
        ),
        slab_size_increase=rel(
            slab_size_bytes(variant),
            slab_size_bytes(unoptimized_same_config),
        ),
        dyn_size_increase=dyn_increase,
    )
