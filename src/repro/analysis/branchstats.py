"""Dynamic branch statistics: what a run actually executed.

A trace sink collecting the per-operation branch economics the paper's
analysis reasons about — dynamic calls/returns per op, the *defended*
fraction of each (the quantity PIBE minimizes), and predictor hit rates.
Used by diagnostics and by tests asserting the elimination really happens
at runtime, not just in static censuses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.trace import TraceSink
from repro.ir.function import Function
from repro.ir.instruction import Instruction


@dataclass
class BranchStats:
    """Aggregated dynamic branch counts."""

    ops: int = 0
    calls: int = 0
    icalls: int = 0
    defended_icalls: int = 0
    rets: int = 0
    defended_rets: int = 0
    ijumps: int = 0

    @property
    def calls_per_op(self) -> float:
        return self.calls / self.ops if self.ops else 0.0

    @property
    def icalls_per_op(self) -> float:
        return self.icalls / self.ops if self.ops else 0.0

    @property
    def rets_per_op(self) -> float:
        return self.rets / self.ops if self.ops else 0.0

    @property
    def defended_icall_fraction(self) -> float:
        return self.defended_icalls / self.icalls if self.icalls else 0.0

    @property
    def defended_ret_fraction(self) -> float:
        return self.defended_rets / self.rets if self.rets else 0.0

    def summary(self) -> str:
        return (
            f"{self.ops} ops: {self.calls_per_op:.1f} calls/op, "
            f"{self.icalls_per_op:.1f} icalls/op "
            f"({self.defended_icall_fraction:.0%} defended), "
            f"{self.rets_per_op:.1f} rets/op "
            f"({self.defended_ret_fraction:.0%} defended)"
        )


class BranchStatsCollector(TraceSink):
    """Trace sink feeding a :class:`BranchStats`."""

    def __init__(self) -> None:
        self.stats = BranchStats()

    def on_run_start(self, entry: str) -> None:
        self.stats.ops += 1

    def on_call(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        self.stats.calls += 1

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        self.stats.icalls += 1
        if inst.defense is not None:
            self.stats.defended_icalls += 1

    def on_ret(self, inst: Instruction, func: Function) -> None:
        self.stats.rets += 1
        if inst.defense is not None:
            self.stats.defended_rets += 1

    def on_ijump(self, inst: Instruction, func: Function) -> None:
        self.stats.ijumps += 1


def collect_branch_stats(module, syscalls, ops=50, seed=5) -> BranchStats:
    """Run the given syscalls and return their aggregate branch stats."""
    from repro.engine.compiled import create_interpreter

    collector = BranchStatsCollector()
    interpreter = create_interpreter(module, [collector], seed=seed)
    for syscall in syscalls:
        interpreter.run_syscall(syscall, times=ops)
    return collector.stats
