"""Runtime stack-usage observer.

Tracks the live sum of stack frame sizes along the execution path — the
quantity PIBE's Rule 2 protects: merging too many frames via inlining
makes hot functions allocate large frames of which each invocation uses
only a fragment (Section 5.2).
"""

from __future__ import annotations

from repro.engine.trace import TraceSink
from repro.ir.function import Function
from repro.ir.instruction import Instruction


class StackUsageTracker(TraceSink):
    """Records peak and average stack depth (bytes) across a run."""

    def __init__(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0
        self._depth_samples = 0
        self._depth_total = 0
        self.max_frames = 0
        self._frames = 0

    def on_enter(self, func: Function) -> None:
        self.current_bytes += func.stack_frame_size
        self._frames += 1
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes
        if self._frames > self.max_frames:
            self.max_frames = self._frames
        self._depth_total += self.current_bytes
        self._depth_samples += 1

    def on_ret(self, inst: Instruction, func: Function) -> None:
        self.current_bytes = max(0, self.current_bytes - func.stack_frame_size)
        self._frames = max(0, self._frames - 1)

    def on_ijump(self, inst: Instruction, func: Function) -> None:
        # Opaque tail transfer leaves the function like a return does.
        if not inst.targets:
            self.on_ret(inst, func)

    def on_run_start(self, entry: str) -> None:
        self.current_bytes = 0
        self._frames = 0

    @property
    def mean_bytes(self) -> float:
        if not self._depth_samples:
            return 0.0
        return self._depth_total / self._depth_samples
