"""Security, size and robustness analyses behind the evaluation tables."""

from repro.analysis.branchstats import (
    BranchStats,
    BranchStatsCollector,
    collect_branch_stats,
)
from repro.analysis.diff import FunctionDelta, ModuleDiff, diff_modules
from repro.analysis.hotspots import (
    Hotspot,
    HotspotProfiler,
    collect_hotspots,
    format_hotspots,
)
from repro.analysis.gadgets import (
    CandidateStats,
    EliminationStats,
    ForwardEdgeCensus,
    backward_edge_census,
    candidate_stats,
    elimination_stats,
    forward_edge_census,
    target_count_distribution,
)
from repro.analysis.pointsto import (
    PointsToResult,
    SiteTargets,
    analyze_pointsto,
    pointsto_inputs_digest,
)
from repro.analysis.robustness import (
    OverlapReport,
    icp_candidates,
    inline_candidates,
    workload_overlap,
)
from repro.analysis.sizes import (
    MEM_PAGE_BYTES,
    SizeReport,
    mem_size_bytes,
    peak_stack_bytes,
    size_report,
    slab_size_bytes,
    text_size_bytes,
)
from repro.analysis.security import (
    SecurityMetrics,
    SiteResidual,
    security_metrics,
)
from repro.analysis.stack import StackUsageTracker

__all__ = [
    "BranchStats",
    "BranchStatsCollector",
    "CandidateStats",
    "EliminationStats",
    "ForwardEdgeCensus",
    "FunctionDelta",
    "Hotspot",
    "HotspotProfiler",
    "MEM_PAGE_BYTES",
    "ModuleDiff",
    "OverlapReport",
    "PointsToResult",
    "SecurityMetrics",
    "SiteResidual",
    "SiteTargets",
    "SizeReport",
    "StackUsageTracker",
    "analyze_pointsto",
    "backward_edge_census",
    "candidate_stats",
    "collect_branch_stats",
    "collect_hotspots",
    "diff_modules",
    "elimination_stats",
    "format_hotspots",
    "forward_edge_census",
    "icp_candidates",
    "inline_candidates",
    "mem_size_bytes",
    "peak_stack_bytes",
    "pointsto_inputs_digest",
    "security_metrics",
    "size_report",
    "slab_size_bytes",
    "target_count_distribution",
    "text_size_bytes",
    "workload_overlap",
]
