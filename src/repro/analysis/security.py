"""Residual indirect-target security metrics (FineIBT/PAC-style).

PIBE's security argument — and the evaluation methodology of FineIBT
(Gaidis et al.) and PAC-based kernel CFI (Yang et al.) — is the *size of
the residual indirect-target set*: after profile-guided elimination and
hardening, how many targets can each remaining indirect branch still
reach?  This module turns the points-to analysis into those numbers:

- per-site residual counts (the points-to feasible sets of
  :mod:`repro.analysis.pointsto`), against two baselines:
  the global address-taken census (coarse CFI / IBT) and the
  arity-filtered census (type-based CFI, our PIBE2xx bound);
- an AIR-style score (Average Indirect-target Reduction, Zhang & Sekar):
  ``1 - mean_i(|S_i| / |census|)`` — the fraction of the address-taken
  universe the average site can no longer reach;
- a reduction factor vs the type-based bound, isolating what the
  points-to refinement buys beyond signatures.

The result is a plain dict-convertible record so the upcoming Pareto
sweep can attach it to every variant next to cycles and size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.pointsto import PointsToResult, analyze_pointsto
from repro.ir.module import Module


@dataclass(frozen=True)
class SiteResidual:
    """Residual-target accounting for one indirect call site."""

    site_id: int
    function: str
    #: |points-to feasible set|; None = unbounded (no census, flow ⊤)
    residual: Optional[int]
    #: |census ∩ arity| — the type-based (PIBE2xx) bound at this site
    type_bound: int
    #: |census| — the coarse address-taken bound
    census_bound: int
    #: number of profile/ground-truth-observed targets
    observed: int


@dataclass
class SecurityMetrics:
    """Per-variant residual-target metrics for the Pareto sweep."""

    label: str
    icall_sites: int
    #: sites with a finite feasible set
    bounded_sites: int
    #: sites that degraded to the census fallback (⊤ flow)
    fallback_sites: int
    #: address-taken census size (0 when the module declares no tables)
    census_size: int
    #: Σ per-site residual counts (bounded sites only)
    residual_total: int
    #: Σ per-site type-based bounds
    type_bound_total: int
    residual_mean: float
    residual_max: int
    #: AIR-style score vs the census universe, in [0, 1]
    air: float
    #: 1 - residual_total / type_bound_total (points-to win over arity)
    reduction_vs_type: float
    sites: List[SiteResidual] = field(default_factory=list)

    def to_dict(self, include_sites: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "label": self.label,
            "icall_sites": self.icall_sites,
            "bounded_sites": self.bounded_sites,
            "fallback_sites": self.fallback_sites,
            "census_size": self.census_size,
            "residual_total": self.residual_total,
            "type_bound_total": self.type_bound_total,
            "residual_mean": round(self.residual_mean, 4),
            "residual_max": self.residual_max,
            "air": round(self.air, 6),
            "reduction_vs_type": round(self.reduction_vs_type, 6),
        }
        if include_sites:
            out["sites"] = [
                {
                    "site_id": s.site_id,
                    "function": s.function,
                    "residual": s.residual,
                    "type_bound": s.type_bound,
                    "census_bound": s.census_bound,
                    "observed": s.observed,
                }
                for s in sorted(self.sites, key=lambda s: s.site_id)
            ]
        return out


def security_metrics(
    module: Module,
    result: Optional[PointsToResult] = None,
    label: str = "",
) -> SecurityMetrics:
    """Compute residual-target metrics for ``module``.

    ``result`` lets callers reuse an existing points-to solution (the
    analyzer context's, a cached one); by default the memoized
    per-module analysis is used.
    """
    pt = result if result is not None else analyze_pointsto(module)
    params = {f.name: f.num_params for f in module}

    sites: List[SiteResidual] = []
    for site_id, st in sorted(pt.sites.items()):
        type_bound = sum(
            1 for t in pt.census if params.get(t) == st.num_args
        )
        sites.append(
            SiteResidual(
                site_id=site_id,
                function=st.function,
                residual=(
                    len(st.feasible) if st.feasible is not None else None
                ),
                type_bound=type_bound,
                census_bound=len(pt.census),
                observed=len(st.truth),
            )
        )

    bounded = [s for s in sites if s.residual is not None]
    census_size = len(pt.census)
    residual_total = sum(s.residual for s in bounded)  # type: ignore[misc]
    type_total = sum(s.type_bound for s in bounded)
    if bounded and census_size:
        air = 1.0 - sum(
            (s.residual or 0) / census_size for s in bounded
        ) / len(bounded)
    else:
        air = 0.0
    return SecurityMetrics(
        label=label or module.name,
        icall_sites=len(sites),
        bounded_sites=len(bounded),
        fallback_sites=sum(
            1 for st in pt.sites.values() if st.census_fallback
        ),
        census_size=census_size,
        residual_total=residual_total,
        type_bound_total=type_total,
        residual_mean=(
            residual_total / len(bounded) if bounded else 0.0
        ),
        residual_max=max((s.residual or 0 for s in bounded), default=0),
        air=max(0.0, min(1.0, air)),
        reduction_vs_type=(
            1.0 - residual_total / type_total if type_total else 0.0
        ),
        sites=sites,
    )
