"""Per-function cycle attribution — a ``perf report`` for the simulator.

Attributes every cycle the timing model charges to the function whose
code was executing (self cycles) and to every frame on the call stack
(total cycles), so you can see *where* a kernel variant spends its time
and — comparing variants — where a defense's overhead lands. This is the
tool that makes statements like "most remaining overhead is return
retpolines in the uaccess primitives" checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.costs import DEFAULT_COSTS, CostModel
from repro.cpu.timing import TimingModel
from repro.engine.compiled import create_interpreter
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module


class HotspotProfiler(TimingModel):
    """Timing model that also attributes cycles to functions.

    ``self_cycles[name]`` — cycles charged while ``name``'s own code ran;
    ``total_cycles[name]`` — cycles charged while ``name`` was anywhere on
    the call stack (inclusive time).
    """

    def __init__(
        self,
        module: Module,
        costs: CostModel = DEFAULT_COSTS,
        model_icache: bool = True,
    ) -> None:
        super().__init__(module, costs=costs, model_icache=model_icache)
        self.self_cycles: Dict[str, float] = {}
        self.total_cycles: Dict[str, float] = {}
        self._frames: List[str] = []
        self._last_cycles = 0.0

    # -- attribution machinery ------------------------------------------------

    def _attribute(self) -> None:
        delta = self.cycles - self._last_cycles
        if delta <= 0:
            return
        self._last_cycles = self.cycles
        if not self._frames:
            return
        current = self._frames[-1]
        self.self_cycles[current] = self.self_cycles.get(current, 0.0) + delta
        for name in set(self._frames):
            self.total_cycles[name] = self.total_cycles.get(name, 0.0) + delta

    # -- trace hooks: attribute before stack changes ---------------------------

    def on_run_start(self, entry: str) -> None:
        super().on_run_start(entry)
        self._attribute()  # kernel-entry charge lands on the caller side
        self._frames = []

    def on_enter(self, func: Function) -> None:
        self._attribute()
        self._frames.append(func.name)
        super().on_enter(func)
        self._attribute()

    def on_mix(self, arith, load, store, cmp, fence, br) -> None:
        super().on_mix(arith, load, store, cmp, fence, br)
        self._attribute()

    def on_call(self, inst: Instruction, caller, callee) -> None:
        super().on_call(inst, caller, callee)
        self._attribute()

    def on_icall(self, inst: Instruction, caller, callee) -> None:
        super().on_icall(inst, caller, callee)
        self._attribute()

    def on_ret(self, inst: Instruction, func: Function) -> None:
        super().on_ret(inst, func)
        self._attribute()
        if self._frames:
            self._frames.pop()

    def on_ijump(self, inst: Instruction, func: Function) -> None:
        super().on_ijump(inst, func)
        self._attribute()
        if not inst.targets and self._frames:
            self._frames.pop()  # opaque tail transfer leaves the function


@dataclass
class Hotspot:
    function: str
    self_cycles: float
    total_cycles: float
    self_fraction: float


def collect_hotspots(
    module: Module,
    syscalls: List[str],
    ops: int = 40,
    seed: int = 5,
    top: Optional[int] = 15,
    costs: CostModel = DEFAULT_COSTS,
) -> List[Hotspot]:
    """Run the given syscalls and return functions ranked by self cycles."""
    profiler = HotspotProfiler(module, costs=costs)
    interpreter = create_interpreter(module, [profiler], seed=seed)
    for syscall in syscalls:
        interpreter.run_syscall(syscall, times=ops)
    grand_total = max(sum(profiler.self_cycles.values()), 1e-9)
    spots = [
        Hotspot(
            function=name,
            self_cycles=cycles,
            total_cycles=profiler.total_cycles.get(name, cycles),
            self_fraction=cycles / grand_total,
        )
        for name, cycles in profiler.self_cycles.items()
    ]
    spots.sort(key=lambda h: -h.self_cycles)
    return spots[:top] if top else spots


def format_hotspots(spots: List[Hotspot]) -> str:
    """Render a ranked hotspot list as an aligned text table."""
    lines = [f"{'self%':>7s} {'self cyc':>12s} {'total cyc':>12s}  function"]
    for spot in spots:
        lines.append(
            f"{spot.self_fraction:>7.1%} {spot.self_cycles:>12.0f} "
            f"{spot.total_cycles:>12.0f}  {spot.function}"
        )
    return "\n".join(lines)
