"""Module diffing: what did a transformation pipeline actually change?

Compares two images (e.g. the LTO baseline and a PIBE variant) at the
function and instruction level — the reproduction's analogue of diffing
``objdump`` outputs, used by the evaluation's size analysis and by the
``diff`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ir.module import Module


@dataclass
class FunctionDelta:
    """Per-function size change between two images."""

    name: str
    size_before: int
    size_after: int

    @property
    def delta(self) -> int:
        return self.size_after - self.size_before


@dataclass
class ModuleDiff:
    """Structural difference between two modules."""

    added_functions: List[str] = field(default_factory=list)
    removed_functions: List[str] = field(default_factory=list)
    grown: List[FunctionDelta] = field(default_factory=list)
    shrunk: List[FunctionDelta] = field(default_factory=list)
    unchanged: int = 0
    size_before: int = 0
    size_after: int = 0
    #: opcode -> (count before, count after)
    opcode_counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: defense tag -> (sites before, sites after)
    defense_counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def size_delta(self) -> int:
        return self.size_after - self.size_before

    def summary(self) -> str:
        lines = [
            f"size: {self.size_before} -> {self.size_after} instructions "
            f"({self.size_delta:+d})",
            f"functions: +{len(self.added_functions)} "
            f"-{len(self.removed_functions)} "
            f"grown {len(self.grown)} shrunk {len(self.shrunk)} "
            f"unchanged {self.unchanged}",
        ]
        for opcode, (before, after) in sorted(self.opcode_counts.items()):
            if before != after:
                lines.append(f"  {opcode:8s} {before} -> {after}")
        for tag, (before, after) in sorted(self.defense_counts.items()):
            lines.append(f"  defense {tag}: {before} -> {after}")
        top = sorted(self.grown, key=lambda d: -d.delta)[:5]
        if top:
            lines.append("largest growth:")
            for delta in top:
                lines.append(
                    f"  @{delta.name}: {delta.size_before} -> "
                    f"{delta.size_after} ({delta.delta:+d})"
                )
        return "\n".join(lines)


def _opcode_histogram(module: Module) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for inst in module.instructions():
        counts[inst.opcode.value] = counts.get(inst.opcode.value, 0) + 1
    return counts


def _defense_histogram(module: Module) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for inst in module.instructions():
        if inst.defense is not None:
            counts[inst.defense] = counts.get(inst.defense, 0) + 1
    return counts


def diff_modules(before: Module, after: Module) -> ModuleDiff:
    """Compute the structural diff from ``before`` to ``after``."""
    result = ModuleDiff(
        size_before=before.size(), size_after=after.size()
    )
    before_names: Set[str] = set(before.functions)
    after_names: Set[str] = set(after.functions)
    result.added_functions = sorted(after_names - before_names)
    result.removed_functions = sorted(before_names - after_names)

    for name in sorted(before_names & after_names):
        delta = FunctionDelta(
            name, before.get(name).size(), after.get(name).size()
        )
        if delta.delta > 0:
            result.grown.append(delta)
        elif delta.delta < 0:
            result.shrunk.append(delta)
        else:
            result.unchanged += 1

    ops_before = _opcode_histogram(before)
    ops_after = _opcode_histogram(after)
    for opcode in sorted(set(ops_before) | set(ops_after)):
        result.opcode_counts[opcode] = (
            ops_before.get(opcode, 0),
            ops_after.get(opcode, 0),
        )
    tags_before = _defense_histogram(before)
    tags_after = _defense_histogram(after)
    for tag in sorted(set(tags_before) | set(tags_after)):
        result.defense_counts[tag] = (
            tags_before.get(tag, 0),
            tags_after.get(tag, 0),
        )
    return result
