"""IR interpreter: executes kernel entry points and streams trace events.

The interpreter is the reproduction's stand-in for running code on real
hardware. It walks the CFG, samples indirect-call targets and branch
outcomes from per-instruction behaviour metadata, and notifies trace sinks
(profiler, timing model) of every control-flow event — the same event
stream the paper's LBR-based profiler and benchmark harness observe.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.engine.behavior import (
    LoopState,
    branch_taken,
    cumulative_weights,
    pick_index,
    weighted_choice,
)
from repro.engine.trace import TraceSink
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_CASE_WEIGHTS,
    ATTR_P_TAKEN,
    ATTR_TARGETS,
    ATTR_TRIP,
    Opcode,
)


class ExecutionError(Exception):
    """Raised when a run violates an interpreter limit or meets bad IR."""


class ExecutionLimits:
    """Safety rails for interpretation."""

    __slots__ = ("max_depth", "max_steps")

    def __init__(self, max_depth: int = 128, max_steps: int = 5_000_000) -> None:
        self.max_depth = max_depth
        self.max_steps = max_steps


class Interpreter:
    """Executes module functions, dispatching events to sinks.

    Parameters
    ----------
    module:
        The (possibly transformed/hardened) program.
    sinks:
        Trace observers; all receive every event in order.
    seed:
        Seed for the behaviour RNG — runs are deterministic per seed.
    limits:
        Step/recursion bounds.
    """

    def __init__(
        self,
        module: Module,
        sinks: Iterable[TraceSink] = (),
        seed: int = 0,
        limits: Optional[ExecutionLimits] = None,
        target_stickiness: float = 0.85,
    ) -> None:
        self.module = module
        self.sinks: List[TraceSink] = list(sinks)
        self.rng = random.Random(seed)
        self.limits = limits or ExecutionLimits()
        self._steps = 0
        # Consecutive invocations of an indirect site tend to hit the same
        # target (a process reads the same fd type repeatedly); model that
        # correlation with per-site Markov reuse. The stationary marginal
        # distribution still matches the site's target weights.
        if not 0.0 <= target_stickiness < 1.0:
            raise ValueError("target_stickiness must be in [0, 1)")
        self.target_stickiness = target_stickiness
        self._last_target: Dict[int, str] = {}

    def add_sink(self, sink: TraceSink) -> None:
        self.sinks.append(sink)

    # -- public entry points --------------------------------------------------

    def run_syscall(self, syscall: str, times: int = 1) -> None:
        """Invoke a syscall handler ``times`` times (one userspace op each)."""
        handler = self.module.syscalls.get(syscall)
        if handler is None:
            raise ExecutionError(f"unknown syscall {syscall!r}")
        self.run_function(handler, times=times)

    def run_function(self, name: str, times: int = 1) -> None:
        if name not in self.module:
            raise ExecutionError(f"unknown function {name!r}")
        # Each run starts with cold per-site target history: back-to-back
        # runs on one interpreter are independent and per-seed
        # deterministic regardless of what ran before.
        self._last_target.clear()
        func = self.module.get(name)
        for _ in range(times):
            self._steps = 0
            for sink in self.sinks:
                sink.on_run_start(name)
            self._execute(func, depth=0)
            for sink in self.sinks:
                sink.on_run_end(name)

    # -- core execution loop -----------------------------------------------------

    def _execute(self, func: Function, depth: int) -> None:
        if depth > self.limits.max_depth:
            raise ExecutionError(
                f"call depth exceeded {self.limits.max_depth} in @{func.name}"
            )
        for sink in self.sinks:
            sink.on_enter(func)

        blocks = func.blocks
        block = func.entry
        loops = LoopState()
        rng = self.rng
        sinks = self.sinks
        # straight-line mix accumulators
        n_arith = n_load = n_store = n_cmp = n_fence = n_br = 0

        def flush() -> None:
            nonlocal n_arith, n_load, n_store, n_cmp, n_fence, n_br
            if n_arith or n_load or n_store or n_cmp or n_fence or n_br:
                for sink in sinks:
                    sink.on_mix(n_arith, n_load, n_store, n_cmp, n_fence, n_br)
                n_arith = n_load = n_store = n_cmp = n_fence = n_br = 0

        while True:
            next_label: Optional[str] = None
            returned = False
            executed = 0
            for inst in block.instructions:
                executed += 1
                op = inst.opcode
                if op is Opcode.ARITH:
                    n_arith += 1
                elif op is Opcode.LOAD:
                    n_load += 1
                elif op is Opcode.STORE:
                    n_store += 1
                elif op is Opcode.CMP:
                    n_cmp += 1
                elif op is Opcode.FENCE:
                    n_fence += 1
                elif op is Opcode.CALL:
                    flush()
                    callee = self.module.functions.get(inst.callee)
                    if callee is None:
                        raise ExecutionError(
                            f"call to undefined @{inst.callee} "
                            f"in @{func.name}"
                        )
                    for sink in sinks:
                        sink.on_call(inst, func, callee)
                    self._execute(callee, depth + 1)
                elif op is Opcode.ICALL:
                    flush()
                    dist = inst.attrs.get(ATTR_TARGETS)
                    if not dist:
                        raise ExecutionError(
                            f"icall without targets in @{func.name}"
                        )
                    site = inst.site_id
                    last = self._last_target.get(site) if site is not None else None
                    if (
                        last is not None
                        and last in dist
                        and rng.random() < self.target_stickiness
                    ):
                        target = last
                    else:
                        target = weighted_choice(rng, dist)
                    if site is not None:
                        self._last_target[site] = target
                    callee = self.module.functions.get(target)
                    if callee is None:
                        raise ExecutionError(
                            f"icall resolved to undefined @{target} "
                            f"in @{func.name}"
                        )
                    for sink in sinks:
                        sink.on_icall(inst, func, callee)
                    self._execute(callee, depth + 1)
                elif op is Opcode.RET:
                    flush()
                    for sink in sinks:
                        sink.on_ret(inst, func)
                    returned = True
                    break
                elif op is Opcode.JMP:
                    next_label = inst.targets[0]
                    break
                elif op is Opcode.BR:
                    n_br += 1
                    taken = branch_taken(
                        rng,
                        inst.attrs.get(ATTR_P_TAKEN, 0.5),
                        loops,
                        block.label,
                        inst.attrs.get(ATTR_TRIP),
                    )
                    next_label = inst.targets[0] if taken else inst.targets[1]
                    break
                elif op is Opcode.SWITCH:
                    flush()
                    next_label = self._pick_case(inst)
                    break
                elif op is Opcode.IJUMP:
                    flush()
                    for sink in sinks:
                        sink.on_ijump(inst, func)
                    if inst.targets:
                        # jump table: pick a case and continue intra-function
                        next_label = self._pick_case(inst)
                    else:
                        # opaque indirect tail transfer (inline asm)
                        returned = True
                    break
                else:  # pragma: no cover - exhaustive over Opcode
                    raise ExecutionError(f"unhandled opcode {op!r}")
            else:
                # fell off an unterminated block
                self._steps += executed
                raise ExecutionError(
                    f"block {block.label!r} in @{func.name} is unterminated"
                )
            # Charge only the instructions actually executed (a terminator
            # can exit a block early), so max_steps bounds real work.
            self._steps += executed
            if self._steps > self.limits.max_steps:
                raise ExecutionError(
                    f"step limit {self.limits.max_steps} exceeded "
                    f"(runaway loop in @{func.name}?)"
                )
            if returned:
                return
            if next_label is None:
                raise ExecutionError(
                    f"terminator of {block.label!r} in @{func.name} "
                    "yielded no successor"
                )
            block = blocks[next_label]

    def _pick_case(self, inst: Instruction) -> str:
        weights = inst.attrs.get(ATTR_CASE_WEIGHTS)
        if weights:
            # Float cumulative weights used directly: no quantization bias,
            # and zero-weight cases are genuinely never taken.
            cum, total = cumulative_weights(weights)
            if total > 0:
                return inst.targets[pick_index(self.rng, cum, total)]
        return self.rng.choice(list(inst.targets))
