"""Stochastic behaviour helpers shared by the interpreter and the ICP pass.

Indirect-call target selection and conditional-branch outcomes are sampled
from per-instruction ground-truth distributions. Promoted-call guard chains
(Listing 2) are given the *conditional* probability of matching given that
no earlier guard matched, so the chain reproduces the original marginal
target distribution without interpreter special-casing.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple


def cumulative_weights(weights: Sequence[float]) -> Tuple[List[float], float]:
    """Running-sum form of a weight sequence: ``(cumulative, total)``.

    The cumulative array is what :func:`pick_index` bisects; building it
    once per site (instead of per execution) is the compiled engine's
    target-selection fast path.
    """
    cum: List[float] = []
    acc = 0.0
    for w in weights:
        if w < 0:
            raise ValueError("negative weight in distribution")
        acc += w
        cum.append(acc)
    return cum, acc


def pick_index(rng: random.Random, cum: Sequence[float], total: float) -> int:
    """Sample an index with probability proportional to its weight.

    Draws exactly one ``rng.random()`` and selects the first index whose
    cumulative weight exceeds the draw — bit-identical to iterating
    :func:`weighted_choice` over the same weights in the same order.
    """
    idx = bisect_right(cum, rng.random() * total)
    if idx >= len(cum):  # floating-point edge: clamp to the final index
        idx = len(cum) - 1
    return idx


def weighted_choice(rng: random.Random, dist: Dict[str, int]) -> str:
    """Pick a key from ``dist`` with probability proportional to its weight."""
    if not dist:
        raise ValueError("cannot choose from an empty distribution")
    total = 0
    for w in dist.values():
        if w < 0:
            raise ValueError("negative weight in distribution")
        total += w
    if total <= 0:
        raise ValueError("distribution has zero total weight")
    pick = rng.random() * total
    acc = 0.0
    last = None
    for key, weight in dist.items():
        acc += weight
        last = key
        if pick < acc:
            return key
    assert last is not None  # floating-point edge: return the final key
    return last


def guard_probabilities(
    dist: Dict[str, int], promoted: Sequence[str]
) -> List[Tuple[str, float]]:
    """Conditional match probability for each guard in a promotion chain.

    For promoted targets ``t1..tk`` (checked in order) over distribution
    ``dist``, guard ``i`` matches with probability
    ``w_i / (total - w_1 - ... - w_{i-1})``.
    """
    total = float(sum(dist.values()))
    if total <= 0:
        raise ValueError("distribution has zero total weight")
    result: List[Tuple[str, float]] = []
    remaining = total
    for target in promoted:
        weight = float(dist.get(target, 0))
        p = weight / remaining if remaining > 0 else 0.0
        result.append((target, min(max(p, 0.0), 1.0)))
        remaining -= weight
    return result


def residual_distribution(
    dist: Dict[str, int], promoted: Sequence[str]
) -> Dict[str, int]:
    """The target distribution left for the fallback indirect call."""
    return {t: w for t, w in dist.items() if t not in set(promoted)}


def expected_counts(
    dist: Dict[str, int], invocations: int
) -> Dict[str, int]:
    """Expected per-target execution counts over ``invocations`` calls."""
    total = sum(dist.values())
    if total <= 0:
        return {t: 0 for t in dist}
    return {t: round(invocations * w / total) for t, w in dist.items()}


class LoopState:
    """Per-frame trip-count bookkeeping for deterministic loops."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def take_back_edge(self, label: str, trip: int) -> bool:
        """Whether the loop back-edge at block ``label`` should be taken.

        Returns ``True`` for the first ``trip`` queries, then resets —
        modelling a loop with a deterministic trip count per entry.
        """
        done = self.counts.get(label, 0)
        if done < trip:
            self.counts[label] = done + 1
            return True
        self.counts[label] = 0
        return False


def branch_taken(
    rng: random.Random, p_taken: float, loops: Optional[LoopState], label: str, trip: Optional[int]
) -> bool:
    """Resolve a conditional branch outcome."""
    if trip is not None and loops is not None:
        return loops.take_back_edge(label, trip)
    if p_taken >= 1.0:
        return True
    if p_taken <= 0.0:
        return False
    return rng.random() < p_taken
