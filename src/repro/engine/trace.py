"""Execution-trace observer interface.

The interpreter streams events to any number of sinks instead of building a
trace in memory: the profiler (:mod:`repro.profiling`) and the cycle-level
timing model (:mod:`repro.cpu.timing`) are both sinks, mirroring how the
paper's profiling binary and benchmark runs consume the same execution.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.function import Function
from repro.ir.instruction import Instruction


class TraceSink:
    """Base sink: all callbacks default to no-ops; override what you need."""

    def on_enter(self, func: Function) -> None:
        """A function body is entered (call target or entry invocation)."""

    def on_mix(
        self, arith: int, load: int, store: int, cmp: int, fence: int, br: int
    ) -> None:
        """A batch of straight-line instructions executed."""

    def on_call(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        """A direct call executed."""

    def on_icall(
        self, inst: Instruction, caller: Function, callee: Function
    ) -> None:
        """An indirect call executed; ``callee`` is the resolved target."""

    def on_ret(self, inst: Instruction, func: Function) -> None:
        """A return executed in ``func``."""

    def on_ijump(self, inst: Instruction, func: Function) -> None:
        """An indirect jump (lowered jump table) executed."""

    def on_run_start(self, entry: str) -> None:
        """A new top-level invocation begins (kernel entry from userspace)."""

    def on_run_end(self, entry: str) -> None:
        """The top-level invocation returned to userspace."""


class TraceRecorder(TraceSink):
    """Records a full event list — used by tests and debugging only."""

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def on_enter(self, func: Function) -> None:
        self.events.append(("enter", func.name))

    def on_mix(self, arith, load, store, cmp, fence, br) -> None:
        self.events.append(("mix", arith, load, store, cmp, fence, br))

    def on_call(self, inst, caller, callee) -> None:
        self.events.append(("call", inst.site_id, caller.name, callee.name))

    def on_icall(self, inst, caller, callee) -> None:
        self.events.append(("icall", inst.site_id, caller.name, callee.name))

    def on_ret(self, inst, func) -> None:
        self.events.append(("ret", func.name))

    def on_ijump(self, inst, func) -> None:
        self.events.append(("ijump", func.name))

    def on_run_start(self, entry: str) -> None:
        self.events.append(("run_start", entry))

    def on_run_end(self, entry: str) -> None:
        self.events.append(("run_end", entry))

    def of_kind(self, kind: str) -> List[Tuple]:
        return [e for e in self.events if e[0] == kind]
