"""Compiled execution engine: precompiled CFG walking.

The reference interpreter (:mod:`repro.engine.interpreter`) dispatches on
every instruction's opcode, re-derives indirect-target distributions per
execution, and resolves successor blocks through label dictionaries. This
module applies PIBE's own lesson — move cost out of the hot path ahead of
time — to the engine itself: a precompilation pass flattens each basic
block into a :class:`CompiledBlock` whose straight-line instruction runs
collapse to precomputed mix counts, whose direct calls carry pre-resolved
callee references, whose stochastic points (icall/switch/ijump targets)
carry cumulative-weight arrays ready for ``bisect``, and whose terminator
is a single tuple descriptor with direct successor-block references.

:class:`CompiledInterpreter` then replays a compiled program emitting the
**bit-identical event stream** the reference interpreter would emit for
the same ``(module, entry, seed)`` — every sink callback, every RNG draw,
every error, in the same order. The differential tests in
``tests/engine/test_compiled.py`` pin that equivalence; the reference
engine stays the semantic oracle.

Compiled programs are cached per :class:`~repro.ir.module.Module` and
invalidated through the module's ``version`` counter, which every
transformation pass bumps (see :class:`~repro.passes.manager.PassManager`).
Mutating IR by hand after a run requires an explicit
``module.bump_version()``.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.behavior import LoopState, cumulative_weights, pick_index
from repro.engine.interpreter import ExecutionError, Interpreter
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_CASE_WEIGHTS,
    ATTR_P_TAKEN,
    ATTR_TARGETS,
    ATTR_TRIP,
    Opcode,
)

#: Bumped whenever engine semantics change in a way that affects emitted
#: event streams or measured numbers. Part of every disk-cache key, so a
#: stale ``.repro-cache/`` can never serve results from older semantics.
ENGINE_VERSION = "engine-v3"

# Step kinds (first element of a step tuple).
STEP_MIX = 0  # (0, arith, load, store, cmp, fence)
STEP_CALL = 1  # (1, inst, callee_cfunc_or_None)
STEP_ICALL = 2  # (2, inst, site_id, dist, names, cum, total)

# Terminator kinds (first element of a terminator tuple).
TERM_RET = 0  # (0, inst)
TERM_JMP = 1  # (1, succ)
TERM_BR = 2  # (2, label, p_taken, trip, taken_succ, fall_succ)
TERM_SWITCH = 3  # (3, succs, cum, total)
TERM_IJUMP = 4  # (4, inst, succs_or_None, cum, total)
TERM_MISSING = 5  # (5,)  — unterminated block, error on execution


class CompiledBlock:
    """One basic block flattened for execution.

    ``steps`` holds the non-terminator work (mix batches, calls), ``term``
    the single terminator descriptor, and ``charge`` the number of
    instructions one traversal of this block executes (terminator index
    plus one — dead code after an early terminator is never compiled).
    """

    __slots__ = ("label", "steps", "term", "charge")

    def __init__(self, label: str) -> None:
        self.label = label
        self.steps: Tuple[tuple, ...] = ()
        self.term: tuple = (TERM_MISSING,)
        self.charge = 0

    def __repr__(self) -> str:
        return f"<CompiledBlock {self.label} steps={len(self.steps)}>"


class CompiledFunction:
    """A function compiled to linked :class:`CompiledBlock`s."""

    __slots__ = ("func", "entry", "blocks", "has_trips", "leaf")

    def __init__(self, func: Function) -> None:
        self.func = func
        self.blocks: Dict[str, CompiledBlock] = {
            label: CompiledBlock(label) for label in func.blocks
        }
        self.entry: Optional[CompiledBlock] = (
            self.blocks[func.entry_label]
            if func.entry_label is not None
            else None
        )
        self.has_trips = False
        #: ``(mix_step_or_None, ret_inst, charge)`` when the entry block is
        #: a pure straight-line leaf (mix + ret, no calls, no RNG) — the
        #: most common dynamic shape, executed via a dedicated fast path.
        self.leaf: Optional[tuple] = None

    @property
    def name(self) -> str:
        return self.func.name

    def __repr__(self) -> str:
        return f"<CompiledFunction {self.name} blocks={len(self.blocks)}>"


class CompiledProgram:
    """All of a module's functions in compiled form, plus the module
    version the compilation is valid for."""

    __slots__ = ("functions", "version", "__weakref__")

    def __init__(self, functions: Dict[str, CompiledFunction], version: int) -> None:
        self.functions = functions
        self.version = version

    def __repr__(self) -> str:
        return (
            f"<CompiledProgram functions={len(self.functions)} "
            f"version={self.version}>"
        )


def _weighted_picker(
    labels: Sequence[str], weights: Optional[Sequence[float]]
) -> Tuple[Optional[Tuple[float, ...]], float]:
    """Precompute the cumulative-weight array for a multiway pick.

    Returns ``(None, 0.0)`` when the pick must fall back to a uniform
    ``rng.choice`` — no weights, or a zero total — matching
    ``Interpreter._pick_case`` branch-for-branch so RNG consumption is
    identical.
    """
    if not weights:
        return None, 0.0
    cum, total = cumulative_weights(weights)
    if total <= 0:
        return None, 0.0
    return tuple(cum), total


def _compile_block(
    block: BasicBlock,
    cfunc: CompiledFunction,
    functions: Dict[str, CompiledFunction],
) -> None:
    """Fill ``cfunc.blocks[block.label]`` from the IR block."""
    out = cfunc.blocks[block.label]
    steps: List[tuple] = []
    n_arith = n_load = n_store = n_cmp = n_fence = 0

    def flush_mix() -> None:
        nonlocal n_arith, n_load, n_store, n_cmp, n_fence
        if n_arith or n_load or n_store or n_cmp or n_fence:
            steps.append((STEP_MIX, n_arith, n_load, n_store, n_cmp, n_fence))
            n_arith = n_load = n_store = n_cmp = n_fence = 0

    term: Optional[tuple] = None
    charge = 0
    blocks = cfunc.blocks
    for inst in block.instructions:
        charge += 1
        op = inst.opcode
        if op is Opcode.ARITH:
            n_arith += 1
        elif op is Opcode.LOAD:
            n_load += 1
        elif op is Opcode.STORE:
            n_store += 1
        elif op is Opcode.CMP:
            n_cmp += 1
        elif op is Opcode.FENCE:
            n_fence += 1
        elif op is Opcode.CALL:
            flush_mix()
            # Pre-resolve the callee; a dangling name stays None and
            # raises at execution time, exactly like the reference.
            steps.append((STEP_CALL, inst, functions.get(inst.callee)))
        elif op is Opcode.ICALL:
            flush_mix()
            dist = inst.attrs.get(ATTR_TARGETS)
            if dist:
                names = tuple(dist)
                cum, total = cumulative_weights(dist.values())
            else:
                names, cum, total = (), [], 0.0
            steps.append(
                (STEP_ICALL, inst, inst.site_id, dist, names, tuple(cum), total)
            )
        elif op is Opcode.RET:
            term = (TERM_RET, inst)
            break
        elif op is Opcode.JMP:
            term = (TERM_JMP, blocks[inst.targets[0]])
            break
        elif op is Opcode.BR:
            trip = inst.attrs.get(ATTR_TRIP)
            if trip is not None:
                cfunc.has_trips = True
            term = (
                TERM_BR,
                block.label,
                inst.attrs.get(ATTR_P_TAKEN, 0.5),
                trip,
                blocks[inst.targets[0]],
                blocks[inst.targets[1]],
            )
            break
        elif op is Opcode.SWITCH:
            cum, total = _weighted_picker(
                inst.targets, inst.attrs.get(ATTR_CASE_WEIGHTS)
            )
            term = (
                TERM_SWITCH,
                tuple(blocks[t] for t in inst.targets),
                cum,
                total,
            )
            break
        elif op is Opcode.IJUMP:
            if inst.targets:
                cum, total = _weighted_picker(
                    inst.targets, inst.attrs.get(ATTR_CASE_WEIGHTS)
                )
                succs: Optional[tuple] = tuple(
                    blocks[t] for t in inst.targets
                )
            else:
                succs, cum, total = None, None, 0.0
            term = (TERM_IJUMP, inst, succs, cum, total)
            break
        else:  # pragma: no cover - exhaustive over Opcode
            raise ExecutionError(f"unhandled opcode {op!r}")
    flush_mix()
    out.steps = tuple(steps)
    out.term = term if term is not None else (TERM_MISSING,)
    out.charge = charge


def compile_module(module: Module) -> CompiledProgram:
    """Compile every function of ``module`` into a linked program."""
    functions = {
        name: CompiledFunction(func)
        for name, func in module.functions.items()
    }
    for cfunc in functions.values():
        for block in cfunc.func.blocks.values():
            _compile_block(block, cfunc, functions)
        entry = cfunc.entry
        if (
            entry is not None
            and entry.term[0] == TERM_RET
            and len(entry.steps) <= 1
            and all(s[0] == STEP_MIX for s in entry.steps)
        ):
            mix = entry.steps[0] if entry.steps else None
            cfunc.leaf = (mix, entry.term[1], entry.charge)
    return CompiledProgram(functions, getattr(module, "version", 0))


_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Module, CompiledProgram]" = (
    weakref.WeakKeyDictionary()
)


def compiled_program(module: Module) -> CompiledProgram:
    """The module's compiled program, recompiling when ``module.version``
    has moved past the cached compilation."""
    program = _PROGRAM_CACHE.get(module)
    if program is None or program.version != getattr(module, "version", 0):
        program = compile_module(module)
        _PROGRAM_CACHE[module] = program
    return program


class CompiledInterpreter(Interpreter):
    """Drop-in :class:`Interpreter` executing compiled programs.

    Construction, sinks, seeding and limits are inherited; only the
    execution core differs. Event streams (and therefore profiles and
    timings) are identical to the reference engine per seed.
    """

    _functions: Dict[str, CompiledFunction] = {}

    def run_function(self, name: str, times: int = 1) -> None:
        if name not in self.module:
            raise ExecutionError(f"unknown function {name!r}")
        self._last_target.clear()
        program = compiled_program(self.module)
        self._functions = program.functions
        cfunc = program.functions[name]
        for _ in range(times):
            self._steps = 0
            for sink in self.sinks:
                sink.on_run_start(name)
            self._execute_compiled(cfunc, 0)
            for sink in self.sinks:
                sink.on_run_end(name)

    # -- compiled execution core ------------------------------------------

    def _execute_compiled(self, cfunc: CompiledFunction, depth: int) -> None:
        limits = self.limits
        if depth > limits.max_depth:
            raise ExecutionError(
                f"call depth exceeded {limits.max_depth} in @{cfunc.name}"
            )
        func = cfunc.func
        sinks = self.sinks
        leaf = cfunc.leaf
        if leaf is not None:
            # Straight-line mix + ret: same events as the general loop
            # (enter, flushed mix, ret), no RNG, fixed charge.
            mix, ret_inst, charge = leaf
            for sink in sinks:
                sink.on_enter(func)
            if mix is not None:
                for sink in sinks:
                    sink.on_mix(mix[1], mix[2], mix[3], mix[4], mix[5], 0)
            for sink in sinks:
                sink.on_ret(ret_inst, func)
            self._steps += charge
            if self._steps > limits.max_steps:
                raise ExecutionError(
                    f"step limit {limits.max_steps} exceeded "
                    f"(runaway loop in @{func.name}?)"
                )
            return
        for sink in sinks:
            sink.on_enter(func)

        rng = self.rng
        rand = rng.random
        functions = self._functions
        last_target = self._last_target
        stickiness = self.target_stickiness
        loops = LoopState() if cfunc.has_trips else None
        max_steps = limits.max_steps
        block = cfunc.entry
        if block is None:
            raise ValueError(f"function {func.name!r} has no blocks")
        n_arith = n_load = n_store = n_cmp = n_fence = n_br = 0

        while True:
            for step in block.steps:
                kind = step[0]
                if kind == STEP_MIX:
                    n_arith += step[1]
                    n_load += step[2]
                    n_store += step[3]
                    n_cmp += step[4]
                    n_fence += step[5]
                    continue
                # call-like step: flush the accumulated mix first
                if n_arith or n_load or n_store or n_cmp or n_fence or n_br:
                    for sink in sinks:
                        sink.on_mix(
                            n_arith, n_load, n_store, n_cmp, n_fence, n_br
                        )
                    n_arith = n_load = n_store = n_cmp = n_fence = n_br = 0
                if kind == STEP_CALL:
                    callee = step[2]
                    if callee is None:
                        raise ExecutionError(
                            f"call to undefined @{step[1].callee} "
                            f"in @{func.name}"
                        )
                    inst = step[1]
                    for sink in sinks:
                        sink.on_call(inst, func, callee.func)
                    self._execute_compiled(callee, depth + 1)
                else:  # STEP_ICALL
                    _, inst, site, dist, names, cum, total = step
                    if not dist:
                        raise ExecutionError(
                            f"icall without targets in @{func.name}"
                        )
                    last = last_target.get(site) if site is not None else None
                    if (
                        last is not None
                        and last in dist
                        and rand() < stickiness
                    ):
                        target = last
                    elif total <= 0:
                        raise ValueError(
                            "distribution has zero total weight"
                        )
                    else:
                        target = names[pick_index(rng, cum, total)]
                    if site is not None:
                        last_target[site] = target
                    ctarget = functions.get(target)
                    if ctarget is None:
                        raise ExecutionError(
                            f"icall resolved to undefined @{target} "
                            f"in @{func.name}"
                        )
                    for sink in sinks:
                        sink.on_icall(inst, func, ctarget.func)
                    self._execute_compiled(ctarget, depth + 1)

            term = block.term
            kind = term[0]
            returned = False
            next_block: Optional[CompiledBlock] = None
            if kind == TERM_BR:
                n_br += 1
                trip = term[3]
                if trip is not None:
                    taken = loops.take_back_edge(term[1], trip)
                else:
                    p = term[2]
                    if p >= 1.0:
                        taken = True
                    elif p <= 0.0:
                        taken = False
                    else:
                        taken = rand() < p
                next_block = term[4] if taken else term[5]
            elif kind == TERM_JMP:
                next_block = term[1]
            else:
                # RET / SWITCH / IJUMP all flush before acting.
                if n_arith or n_load or n_store or n_cmp or n_fence or n_br:
                    for sink in sinks:
                        sink.on_mix(
                            n_arith, n_load, n_store, n_cmp, n_fence, n_br
                        )
                    n_arith = n_load = n_store = n_cmp = n_fence = n_br = 0
                if kind == TERM_RET:
                    for sink in sinks:
                        sink.on_ret(term[1], func)
                    returned = True
                elif kind == TERM_SWITCH:
                    _, succs, cum, total = term
                    if cum is not None:
                        next_block = succs[pick_index(rng, cum, total)]
                    else:
                        next_block = rng.choice(succs)
                elif kind == TERM_IJUMP:
                    _, inst, succs, cum, total = term
                    for sink in sinks:
                        sink.on_ijump(inst, func)
                    if succs is None:
                        # opaque indirect tail transfer (inline asm)
                        returned = True
                    elif cum is not None:
                        next_block = succs[pick_index(rng, cum, total)]
                    else:
                        next_block = rng.choice(succs)
                else:  # TERM_MISSING
                    self._steps += block.charge
                    raise ExecutionError(
                        f"block {block.label!r} in @{func.name} "
                        "is unterminated"
                    )
            self._steps += block.charge
            if self._steps > max_steps:
                raise ExecutionError(
                    f"step limit {max_steps} exceeded "
                    f"(runaway loop in @{func.name}?)"
                )
            if returned:
                return
            block = next_block


#: Engine registry: name -> interpreter class. ``reference`` is the
#: semantic oracle; ``compiled`` is the exact-replay production engine;
#: ``vectorized`` (registered lazily by :mod:`repro.engine.vectorized`,
#: which imports this module) is the counting-mode batch engine.
ENGINES = {
    "reference": Interpreter,
    "compiled": CompiledInterpreter,
}

#: Engines selectable by name even before their module is imported.
KNOWN_ENGINES = ("reference", "compiled", "vectorized")

#: Engine used when callers do not specify one.
DEFAULT_ENGINE = "compiled"


def create_interpreter(
    module: Module,
    sinks=(),
    seed: int = 0,
    limits=None,
    target_stickiness: float = 0.85,
    engine: str = DEFAULT_ENGINE,
) -> Interpreter:
    """Instantiate the selected execution engine over ``module``."""
    cls = ENGINES.get(engine)
    if cls is None and engine == "vectorized":
        # Deferred: vectorized builds on this module, so it registers
        # itself into ENGINES on first import.
        import repro.engine.vectorized  # noqa: F401

        cls = ENGINES[engine]
    if cls is None:
        raise ValueError(
            f"unknown engine {engine!r}; choose from "
            f"{sorted(set(ENGINES) | set(KNOWN_ENGINES))}"
        )
    return cls(
        module,
        sinks,
        seed=seed,
        limits=limits,
        target_stickiness=target_stickiness,
    )
