"""Trace-driven IR execution engines.

Three tiers share one behavioural contract: the tree-walking reference
:class:`Interpreter` (the semantic oracle), the precompiling
:class:`CompiledInterpreter` (exact event replay), and the superblock
:class:`VectorizedInterpreter` (counting-mode batching for counting
sinks, with automatic fallback to compiled replay for sinks that need
the real event stream). Select via :func:`create_interpreter`'s
``engine=`` knob; per-seed stochastic paths — and therefore event and
count totals — are identical across all three.
"""

from repro.engine.behavior import (
    LoopState,
    branch_taken,
    cumulative_weights,
    expected_counts,
    guard_probabilities,
    pick_index,
    residual_distribution,
    weighted_choice,
)
from repro.engine.compiled import (
    DEFAULT_ENGINE,
    ENGINE_VERSION,
    ENGINES,
    CompiledInterpreter,
    CompiledProgram,
    compile_module,
    compiled_program,
    create_interpreter,
)
from repro.engine.interpreter import ExecutionError, ExecutionLimits, Interpreter
from repro.engine.trace import TraceRecorder, TraceSink
from repro.engine.vectorized import (
    VectorizedInterpreter,
    VectorProgram,
    vector_program,
)

__all__ = [
    "CompiledInterpreter",
    "CompiledProgram",
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_VERSION",
    "ExecutionError",
    "ExecutionLimits",
    "Interpreter",
    "LoopState",
    "TraceRecorder",
    "TraceSink",
    "VectorProgram",
    "VectorizedInterpreter",
    "branch_taken",
    "compile_module",
    "compiled_program",
    "create_interpreter",
    "cumulative_weights",
    "expected_counts",
    "guard_probabilities",
    "pick_index",
    "residual_distribution",
    "vector_program",
    "weighted_choice",
]
