"""Trace-driven IR execution engines.

Two tiers share one event contract: the tree-walking reference
:class:`Interpreter` (the semantic oracle) and the precompiling
:class:`CompiledInterpreter` (the production engine). Select via
:func:`create_interpreter`'s ``engine=`` knob; event streams are
identical per seed, so profiles and timings never depend on the choice.
"""

from repro.engine.behavior import (
    LoopState,
    branch_taken,
    cumulative_weights,
    expected_counts,
    guard_probabilities,
    pick_index,
    residual_distribution,
    weighted_choice,
)
from repro.engine.compiled import (
    DEFAULT_ENGINE,
    ENGINE_VERSION,
    ENGINES,
    CompiledInterpreter,
    CompiledProgram,
    compile_module,
    compiled_program,
    create_interpreter,
)
from repro.engine.interpreter import ExecutionError, ExecutionLimits, Interpreter
from repro.engine.trace import TraceRecorder, TraceSink

__all__ = [
    "CompiledInterpreter",
    "CompiledProgram",
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_VERSION",
    "ExecutionError",
    "ExecutionLimits",
    "Interpreter",
    "LoopState",
    "TraceRecorder",
    "TraceSink",
    "branch_taken",
    "compile_module",
    "compiled_program",
    "create_interpreter",
    "cumulative_weights",
    "expected_counts",
    "guard_probabilities",
    "pick_index",
    "residual_distribution",
    "weighted_choice",
]
