"""Trace-driven IR execution engine."""

from repro.engine.behavior import (
    LoopState,
    branch_taken,
    expected_counts,
    guard_probabilities,
    residual_distribution,
    weighted_choice,
)
from repro.engine.interpreter import ExecutionError, ExecutionLimits, Interpreter
from repro.engine.trace import TraceRecorder, TraceSink

__all__ = [
    "ExecutionError",
    "ExecutionLimits",
    "Interpreter",
    "LoopState",
    "TraceRecorder",
    "TraceSink",
    "branch_taken",
    "expected_counts",
    "guard_probabilities",
    "residual_distribution",
    "weighted_choice",
]
