"""Vectorized execution engine (engine v3): counting-mode superblocks.

The compiled engine (:mod:`repro.engine.compiled`) already removed opcode
dispatch from the hot loop, but it still *replays* every event: one sink
callback per mix batch, call, return. For counting-mode measurements —
the additive, warm-predictor semantics of
:class:`~repro.cpu.counting.CountingTimingModel` — replay is pure waste:
cycles depend only on *how many times* each event happened, never on the
order. This engine exploits that:

Superblocks
    Each function's CFG is partitioned into *superblocks*: maximal chains
    of blocks linked by unconditional control (``jmp``, and ``br`` whose
    outcome is statically known: ``p>=1``/``p<=0``). A chain's straight-
    line instruction mix, branch executions and terminator events are
    precomputed into one integer :class:`~repro.cpu.counting.CountSummary`
    *row*; executing the chain is a single ``counts[row] += 1``.

Deterministic-subtree folding
    A function whose entire execution consumes no randomness (no icalls,
    switches or probabilistic branches, transitively through all direct
    callees) always produces the same counts. Its one-invocation summary
    is precomputed once and calls to it fold into the caller's row — an
    entire call subtree becomes part of one increment.

Trip-loop collapse
    A superblock whose trip-counted back edge targets its own head (and
    whose body consumes no randomness) executes exactly ``trip + 1``
    times per loop entry; the walker adds ``trip`` extra executions in
    O(1) instead of iterating.

Count flush
    Per-row execution counts accumulate in a sparse vector local to the
    interpreter; on flush (bound to the counting sink's property reads)
    the dot product ``counts · rows`` is evaluated — with numpy as a
    dense int64 matrix product when available, in pure python otherwise
    — and delivered to every sink via ``absorb_counts``.

Everything the vector path cannot express falls back to exact-semantics
execution: if any attached sink lacks ``supports_counts`` (profilers,
stateful timing models, trace recorders need the real event stream), the
run delegates wholesale to the compiled engine; inside the vector path,
depth-risky folded subtrees degrade to stepwise walking so limit errors
surface exactly where the reference interpreter raises them.

RNG discipline: the walker consumes ``rng`` draws in *exactly* the
compiled engine's order (stickiness draw, cumulative-weight bisect,
``rng.choice``), and only RNG-free structure is ever folded, so per-seed
stochastic paths — and therefore count totals — are identical across
engines. The differential tests in ``tests/engine/test_vectorized.py``
pin this.

Vector programs are cached per module and invalidated through the module
``version`` counter, exactly like compiled programs: hardening a variant
bumps the version and every superblock summary is rebuilt.

Errors abort a run just as in the other engines (same exception types
and messages at the same RNG positions); counts flushed after an aborted
run may include events past the failure point within the failing
superblock — counting totals are only contractual for successful runs.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.cpu.counting import CountSummary
from repro.engine.behavior import LoopState, pick_index
from repro.engine.compiled import (
    STEP_CALL,
    STEP_ICALL,
    STEP_MIX,
    TERM_BR,
    TERM_IJUMP,
    TERM_JMP,
    TERM_MISSING,
    TERM_RET,
    TERM_SWITCH,
    CompiledFunction,
    CompiledProgram,
    CompiledInterpreter,
    ENGINES,
    compiled_program,
)
from repro.engine.interpreter import ExecutionError
from repro.ir.module import Module
from repro.ir.types import ATTR_DEFENSE, ATTR_VCALL

try:  # pragma: no cover - exercised via tests monkeypatching _np
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

# Walker step kinds (first element of a step tuple).
VSTEP_CALL = 0  # (0, inst, callee_vfunc_or_None)
VSTEP_CALL_DET = 1  # (1, inst, callee_vfunc, summary_row, charge, extra_depth)
VSTEP_ICALL = 2  # (2, inst, site, dist, names, cum, total, icall_row)

# Walker terminator kinds (first element of a term tuple).
VT_RET = 0  # (0,)
VT_JMP = 1  # (1, succ_node)
VT_BR = 2  # (2, label, p, trip, taken_node, fall_node, collapse)
VT_SWITCH = 3  # (3, succ_nodes, cum, total)
VT_IJUMP = 4  # (4, succ_nodes_or_None, cum, total)
VT_MISSING = 5  # (5, label)

#: Step budget for precomputing one deterministic-function summary.
#: A function whose single invocation exceeds this is simply left on the
#: stepwise walker path (correct, just not folded) — this also rejects
#: statically-infinite loops (``br`` with ``p>=1`` back edges).
_DET_STEP_BUDGET = 1_000_000

#: Below this many touched rows a python flush beats building the dense
#: count vector; numpy only pays off on wide flushes.
_NUMPY_FLUSH_MIN_ROWS = 64


class VectorNode:
    """One superblock: a chain of basic blocks executed as a unit.

    ``fast_row`` is the fully-folded count row (chain events plus every
    deterministic callee's summary) — ``None`` when the chain contains a
    step the fold cannot absorb (an icall, or a call to a stochastic or
    undefined function), in which case the walker takes the stepwise
    path over ``steps`` after crediting ``base_row``.
    """

    __slots__ = (
        "head",
        "chain",
        "steps",
        "term",
        "base_row",
        "base_charge",
        "fast_row",
        "fast_charge",
        "need_depth",
    )

    def __init__(self, head: str) -> None:
        self.head = head
        self.chain: Tuple[str, ...] = (head,)
        self.steps: Tuple[tuple, ...] = ()
        self.term: tuple = (VT_MISSING, head)
        self.base_row = -1
        self.base_charge = 0
        self.fast_row: Optional[int] = None
        self.fast_charge = 0
        self.need_depth = 0

    def __repr__(self) -> str:
        return (
            f"<VectorNode {self.head} chain={len(self.chain)} "
            f"steps={len(self.steps)} fast={self.fast_row is not None}>"
        )


class VectorFunction:
    """A function's superblock graph plus its determinism classification."""

    __slots__ = (
        "name",
        "cfunc",
        "ready",
        "compiling",
        "entry",
        "nodes",
        "det",
        "summary",
        "summary_row",
        "charge",
        "det_depth",
    )

    def __init__(self, name: str, cfunc: CompiledFunction) -> None:
        self.name = name
        self.cfunc = cfunc
        self.ready = False
        self.compiling = False
        self.entry: Optional[VectorNode] = None
        self.nodes: Dict[str, VectorNode] = {}
        self.det = False
        self.summary: Optional[CountSummary] = None
        self.summary_row: Optional[int] = None
        self.charge = 0
        self.det_depth = 0

    def __repr__(self) -> str:
        return (
            f"<VectorFunction {self.name} nodes={len(self.nodes)} "
            f"det={self.det}>"
        )


class VectorProgram:
    """A module's lazily-built vector compilation.

    Functions compile on first invocation (a 10×-scale kernel has tens of
    thousands of functions; a benchmark touches a fraction). All count
    rows live in one shared list so a single sparse vector of execution
    counts describes an entire run.
    """

    def __init__(self, cprogram: CompiledProgram, version: int) -> None:
        self.cprogram = cprogram
        self.version = version
        self.functions: Dict[str, VectorFunction] = {}
        self.rows: List[CountSummary] = []
        self.op_row = self.add_row(_scalar_row("ops"))
        self.enter_row = self.add_row(_scalar_row("enters"))
        self.call_row = self.add_row(_scalar_row("calls"))
        self._icall_rows: Dict[Tuple[Optional[str], bool], int] = {}
        # numpy flush cache: (n_rows, matrix, column spec)
        self._matrix: Optional[tuple] = None

    # -- rows --------------------------------------------------------------

    def add_row(self, summary: CountSummary) -> int:
        self.rows.append(summary)
        return len(self.rows) - 1

    def icall_row(self, key: Tuple[Optional[str], bool]) -> int:
        row = self._icall_rows.get(key)
        if row is None:
            summary = CountSummary()
            summary.icalls[key] = 1
            row = self.add_row(summary)
            self._icall_rows[key] = row
        return row

    # -- functions ---------------------------------------------------------

    def resolve(self, name: str) -> Optional[VectorFunction]:
        """The (possibly not yet compiled) vector function for ``name``."""
        vf = self.functions.get(name)
        if vf is None:
            cfunc = self.cprogram.functions.get(name)
            if cfunc is None:
                return None
            vf = VectorFunction(name, cfunc)
            self.functions[name] = vf
        return vf

    def ensure(self, vf: VectorFunction) -> None:
        if not vf.ready and not vf.compiling:
            _compile_function(self, vf)

    # -- count materialization --------------------------------------------

    def materialize(self, counts: Dict[int, int]) -> CountSummary:
        """Evaluate ``Σ counts[i] × rows[i]`` as one :class:`CountSummary`."""
        if (
            _np is not None
            and len(counts) >= _NUMPY_FLUSH_MIN_ROWS
            and max(counts.values()) < (1 << 53)
        ):
            return self._materialize_numpy(counts)
        total = CountSummary()
        rows = self.rows
        for idx, n in counts.items():
            if n:
                total.add_scaled(rows[idx], n)
        return total

    def _columns(self):
        """Dense int64 row matrix over the current row list (cached)."""
        n = len(self.rows)
        cached = self._matrix
        if cached is not None and cached[0] == n:
            return cached[1], cached[2]
        scalar = (
            "ops", "enters", "arith", "load", "store", "cmp", "fence",
            "br", "calls",
        )
        keyed: List[tuple] = []
        index: Dict[tuple, int] = {}
        for row in self.rows:
            for key in row.icalls:
                spec = ("icalls", key)
                if spec not in index:
                    index[spec] = len(scalar) + len(keyed)
                    keyed.append(spec)
            for tag in row.rets:
                spec = ("rets", tag)
                if spec not in index:
                    index[spec] = len(scalar) + len(keyed)
                    keyed.append(spec)
            for tag in row.ijumps:
                spec = ("ijumps", tag)
                if spec not in index:
                    index[spec] = len(scalar) + len(keyed)
                    keyed.append(spec)
        matrix = _np.zeros((n, len(scalar) + len(keyed)), dtype=_np.int64)
        for i, row in enumerate(self.rows):
            for j, slot in enumerate(scalar):
                matrix[i, j] = getattr(row, slot)
            for key, count in row.icalls.items():
                matrix[i, index[("icalls", key)]] = count
            for tag, count in row.rets.items():
                matrix[i, index[("rets", tag)]] = count
            for tag, count in row.ijumps.items():
                matrix[i, index[("ijumps", tag)]] = count
        self._matrix = (n, matrix, (scalar, keyed))
        return matrix, (scalar, keyed)

    def _materialize_numpy(self, counts: Dict[int, int]) -> CountSummary:
        matrix, (scalar, keyed) = self._columns()
        vec = _np.zeros(len(self.rows), dtype=_np.int64)
        vec[list(counts.keys())] = list(counts.values())
        totals = vec @ matrix
        out = CountSummary()
        for j, slot in enumerate(scalar):
            setattr(out, slot, int(totals[j]))
        base = len(scalar)
        for j, (bucket, key) in enumerate(keyed):
            value = int(totals[base + j])
            if value:
                getattr(out, bucket)[key] = value
        return out

    def __repr__(self) -> str:
        ready = sum(1 for f in self.functions.values() if f.ready)
        return (
            f"<VectorProgram functions={ready}/{len(self.functions)} "
            f"rows={len(self.rows)} version={self.version}>"
        )


def _scalar_row(slot: str) -> CountSummary:
    summary = CountSummary()
    setattr(summary, slot, 1)
    return summary


# -- compilation ------------------------------------------------------------


def _build_chain(cfunc: CompiledFunction, head: str):
    """Fold the maximal unconditional chain starting at ``head``.

    Returns ``(base_summary, charge, raw_steps, tail, chain_labels)``
    where ``tail`` is the compiled-level terminator descriptor the walker
    must still resolve at runtime: ``('ret'|'jmp'|'br'|'switch'|'ijump'|
    'missing', compiled term tuple or label)``.
    """
    base = CountSummary()
    charge = 0
    raw_steps: List[tuple] = []
    chain: List[str] = []
    seen = set()
    block = cfunc.blocks[head]
    while True:
        seen.add(block.label)
        chain.append(block.label)
        for step in block.steps:
            if step[0] == STEP_MIX:
                base.arith += step[1]
                base.load += step[2]
                base.store += step[3]
                base.cmp += step[4]
                base.fence += step[5]
            else:
                raw_steps.append(step)
        charge += block.charge
        term = block.term
        kind = term[0]
        if kind == TERM_JMP:
            succ = term[1]
            if succ.label in seen:
                return base, charge, raw_steps, ("jmp", succ.label), chain
            block = succ
            continue
        if kind == TERM_BR:
            base.br += 1  # the br executes once per chain traversal
            trip, p = term[3], term[2]
            if trip is None and (p >= 1.0 or p <= 0.0):
                succ = term[4] if p >= 1.0 else term[5]
                if succ.label not in seen:
                    block = succ
                    continue
                # statically-infinite unconditional loop: cut the chain
                # and leave the (deterministic) br to the walker, which
                # spins until the step limit — reference semantics.
            return base, charge, raw_steps, ("br", term), chain
        if kind == TERM_RET:
            base.rets[term[1].attrs.get(ATTR_DEFENSE)] = (
                base.rets.get(term[1].attrs.get(ATTR_DEFENSE), 0) + 1
            )
            return base, charge, raw_steps, ("ret", term), chain
        if kind == TERM_SWITCH:
            return base, charge, raw_steps, ("switch", term), chain
        if kind == TERM_IJUMP:
            tag = term[1].attrs.get(ATTR_DEFENSE)
            base.ijumps[tag] = base.ijumps.get(tag, 0) + 1
            return base, charge, raw_steps, ("ijump", term), chain
        # TERM_MISSING
        return base, charge, raw_steps, ("missing", block.label), chain


def _compile_function(program: VectorProgram, vf: VectorFunction) -> None:
    """Build ``vf``'s superblock graph, fold what folds, classify."""
    vf.compiling = True
    try:
        cfunc = vf.cfunc
        if cfunc.entry is None:
            vf.ready = True
            return

        # 1. Discover superblocks from the entry; successors of each
        #    walker-level terminator become chain heads.
        raw: Dict[str, tuple] = {}
        pending = [cfunc.func.entry_label]
        while pending:
            head = pending.pop()
            if head in raw:
                continue
            built = _build_chain(cfunc, head)
            raw[head] = built
            tail = built[3]
            kind = tail[0]
            if kind == "jmp":
                pending.append(tail[1])
            elif kind == "br":
                term = tail[1]
                pending.append(term[4].label)
                pending.append(term[5].label)
            elif kind == "switch":
                pending.extend(b.label for b in tail[1][1])
            elif kind == "ijump" and tail[1][2] is not None:
                pending.extend(b.label for b in tail[1][2])

        nodes = {head: VectorNode(head) for head in raw}
        vf.nodes = nodes
        vf.entry = nodes[cfunc.func.entry_label]

        # 2. Convert steps (compiling callees as needed), register rows,
        #    fold deterministic callees into fast rows.
        stochastic = False
        for head, (base, charge, raw_steps, tail, chain) in raw.items():
            node = nodes[head]
            node.chain = tuple(chain)
            steps: List[tuple] = []
            foldable = True
            fast = None
            fast_charge = charge
            need_depth = 0
            for step in raw_steps:
                if step[0] == STEP_CALL:
                    inst, callee_cfunc = step[1], step[2]
                    callee = (
                        program.resolve(inst.callee)
                        if callee_cfunc is not None
                        else None
                    )
                    if callee is not None:
                        program.ensure(callee)
                    if callee is not None and callee.det:
                        steps.append(
                            (
                                VSTEP_CALL_DET,
                                inst,
                                callee,
                                callee.summary_row,
                                callee.charge,
                                1 + callee.det_depth,
                            )
                        )
                        if foldable:
                            if fast is None:
                                fast = CountSummary()
                                fast.add(base)
                            fast.calls += 1
                            fast.add(callee.summary)
                            fast_charge += callee.charge
                            need_depth = max(
                                need_depth, 1 + callee.det_depth
                            )
                        continue
                    steps.append((VSTEP_CALL, inst, callee))
                    foldable = False
                else:  # STEP_ICALL
                    _, inst, site, dist, names, cum, total = step
                    key = (
                        inst.attrs.get(ATTR_DEFENSE),
                        bool(inst.attrs.get(ATTR_VCALL)),
                    )
                    steps.append(
                        (
                            VSTEP_ICALL,
                            inst,
                            site,
                            dist,
                            names,
                            cum,
                            total,
                            program.icall_row(key),
                        )
                    )
                    foldable = False
            node.steps = tuple(steps)
            node.base_row = program.add_row(base)
            node.base_charge = charge
            if foldable:
                if fast is None:
                    # pure chain, nothing folded: fast row IS the base row
                    node.fast_row = node.base_row
                else:
                    node.fast_row = program.add_row(fast)
                node.fast_charge = fast_charge
                node.need_depth = need_depth
            else:
                stochastic = True

        # 3. Resolve terminators to node references; note stochasticity.
        trip_tails: Dict[str, int] = {}
        for head, (_, _, _, tail, chain) in raw.items():
            for label in chain:
                trip_tails[label] = trip_tails.get(label, 0) + 1
        for head, (_, _, _, tail, chain) in raw.items():
            node = nodes[head]
            kind = tail[0]
            if kind == "ret":
                node.term = (VT_RET,)
            elif kind == "jmp":
                node.term = (VT_JMP, nodes[tail[1]])
            elif kind == "br":
                term = tail[1]
                label, p, trip = term[1], term[2], term[3]
                taken = nodes[term[4].label]
                fall = nodes[term[5].label]
                collapse = False
                if trip is not None:
                    stochastic_br = False
                    # Collapse only when this node exclusively owns the
                    # trip counter's label (LoopState is per-label) and
                    # the back edge re-enters this very superblock with
                    # nothing stochastic inside.
                    collapse = (
                        taken is node
                        and node.fast_row is not None
                        and trip_tails.get(label, 0) == 1
                    )
                elif 0.0 < p < 1.0:
                    stochastic = True
                node.term = (VT_BR, label, p, trip, taken, fall, collapse)
            elif kind == "switch":
                term = tail[1]
                node.term = (
                    VT_SWITCH,
                    tuple(nodes[b.label] for b in term[1]),
                    term[2],
                    term[3],
                )
                stochastic = True
            elif kind == "ijump":
                term = tail[1]
                if term[2] is None:
                    node.term = (VT_IJUMP, None, None, 0.0)
                else:
                    node.term = (
                        VT_IJUMP,
                        tuple(nodes[b.label] for b in term[2]),
                        term[3],
                        term[4],
                    )
                    stochastic = True
            else:
                node.term = (VT_MISSING, tail[1])
                stochastic = True  # executing it raises; never fold

        # 4. Deterministic classification: RNG-free everywhere reachable
        #    -> precompute the one-invocation summary.
        if not stochastic:
            _summarize(program, vf)
        vf.ready = True
    finally:
        vf.compiling = False


def _summarize(program: VectorProgram, vf: VectorFunction) -> bool:
    """Execute ``vf`` once symbolically (no RNG) to build its summary."""
    rows = program.rows
    summary = CountSummary()
    summary.enters = 1
    charge = 0
    det_depth = 0
    loops = LoopState()
    node = vf.entry
    while True:
        if node.fast_row is None:
            return False
        det_depth = max(det_depth, node.need_depth)
        summary.add(rows[node.fast_row])
        charge += node.fast_charge
        if charge > _DET_STEP_BUDGET:
            return False
        term = node.term
        kind = term[0]
        if kind == VT_RET:
            break
        if kind == VT_JMP:
            node = term[1]
            continue
        if kind == VT_BR:
            trip = term[3]
            if trip is not None:
                if term[6]:  # collapsed self-loop
                    if trip:
                        summary.add_scaled(rows[node.fast_row], trip)
                        charge += node.fast_charge * trip
                        if charge > _DET_STEP_BUDGET:
                            return False
                    node = term[5]
                else:
                    node = (
                        term[4]
                        if loops.take_back_edge(term[1], trip)
                        else term[5]
                    )
                continue
            p = term[2]
            if p >= 1.0:
                node = term[4]
            elif p <= 0.0:
                node = term[5]
            else:
                return False
            continue
        if kind == VT_IJUMP and term[1] is None:
            break  # opaque tail transfer: event counted, frame returns
        return False  # switch / targeted ijump / missing
    vf.summary = summary
    vf.summary_row = program.add_row(summary)
    vf.charge = charge
    vf.det_depth = det_depth
    vf.det = True
    return True


# -- program cache ----------------------------------------------------------


_VECTOR_CACHE: "weakref.WeakKeyDictionary[Module, VectorProgram]" = (
    weakref.WeakKeyDictionary()
)


def vector_program(module: Module) -> VectorProgram:
    """The module's vector program, rebuilt when ``module.version`` moves
    past the cached compilation (the superblock-cache invalidation seam)."""
    version = getattr(module, "version", 0)
    program = _VECTOR_CACHE.get(module)
    if program is None or program.version != version:
        program = VectorProgram(compiled_program(module), version)
        _VECTOR_CACHE[module] = program
    return program


# -- the engine -------------------------------------------------------------


class VectorizedInterpreter(CompiledInterpreter):
    """Engine v3: superblock counting execution with exact fallback.

    Construction matches the other engines. When every sink declares
    ``supports_counts`` the run takes the vector path; otherwise it
    delegates to the compiled engine (bit-identical event streams). Count
    totals on the vector path equal what a counting sink would tally
    under the other engines, per seed — proven by the differential tests.
    """

    def run_function(self, name: str, times: int = 1) -> None:
        if name not in self.module:
            raise ExecutionError(f"unknown function {name!r}")
        sinks = self.sinks
        if not all(getattr(s, "supports_counts", False) for s in sinks):
            # Somebody needs the real event stream: exact compiled replay.
            super().run_function(name, times=times)
            return
        program = self._bind_program()
        self._last_target.clear()
        vfunc = program.resolve(name)
        program.ensure(vfunc)
        counts = self._vcounts
        counts[program.op_row] += times
        for _ in range(times):
            self._steps = 0
            self._execute_vector(vfunc, 0)

    # -- count plumbing ----------------------------------------------------

    def _bind_program(self) -> VectorProgram:
        program = vector_program(self.module)
        if getattr(self, "_vprogram", None) is not program:
            if getattr(self, "_vprogram", None) is not None:
                # rows are about to change meaning: drain under old rows
                self.flush_counts()
            self._vprogram = program
            self._vcounts: Dict[int, int] = defaultdict(int)
        for sink in self.sinks:
            bind = getattr(sink, "bind_flush", None)
            if bind is not None:
                bind(self.flush_counts)
        return program

    def flush_counts(self) -> None:
        """Deliver accumulated superblock counts to every counting sink."""
        counts = getattr(self, "_vcounts", None)
        if not counts:
            return
        summary = self._vprogram.materialize(counts)
        counts.clear()
        for sink in self.sinks:
            absorb = getattr(sink, "absorb_counts", None)
            if absorb is not None:
                absorb(summary)

    # -- vector execution core --------------------------------------------

    def _execute_vector(
        self,
        vfunc: VectorFunction,
        depth: int,
        counts=None,
        rng=None,
        max_depth: int = 0,
        max_steps: int = 0,
    ) -> None:
        # Hot context rides in positional arguments: recursion re-passing
        # locals is markedly cheaper than per-frame attribute loads.
        if counts is None:
            counts = self._vcounts
            rng = self.rng
            max_depth = self.limits.max_depth
            max_steps = self.limits.max_steps
        if depth > max_depth:
            raise ExecutionError(
                f"call depth exceeded {max_depth} in @{vfunc.name}"
            )
        if vfunc.det and depth + vfunc.det_depth <= max_depth:
            # whole-subtree fold: one increment, summary includes enters
            counts[vfunc.summary_row] += 1
            self._steps += vfunc.charge
            if self._steps > max_steps:
                raise ExecutionError(
                    f"step limit {max_steps} exceeded "
                    f"(runaway loop in @{vfunc.name}?)"
                )
            return
        program = self._vprogram
        if not vfunc.ready:
            program.ensure(vfunc)
            if vfunc.det and depth + vfunc.det_depth <= max_depth:
                counts[vfunc.summary_row] += 1
                self._steps += vfunc.charge
                if self._steps > max_steps:
                    raise ExecutionError(
                        f"step limit {max_steps} exceeded "
                        f"(runaway loop in @{vfunc.name}?)"
                    )
                return
        counts[program.enter_row] += 1
        node = vfunc.entry
        if node is None:
            raise ValueError(f"function {vfunc.name!r} has no blocks")
        rand = rng.random
        call_row = program.call_row
        loops: Optional[LoopState] = None

        while True:
            fast = node.fast_row
            if fast is not None and depth + node.need_depth <= max_depth:
                counts[fast] += 1
                self._steps += node.fast_charge
            else:
                counts[node.base_row] += 1
                self._steps += node.base_charge
                for step in node.steps:
                    kind = step[0]
                    if kind == VSTEP_CALL_DET:
                        if depth + step[5] <= max_depth:
                            counts[call_row] += 1
                            counts[step[3]] += 1
                            self._steps += step[4]
                            if self._steps > max_steps:
                                raise ExecutionError(
                                    f"step limit {max_steps} exceeded "
                                    f"(runaway loop in @{vfunc.name}?)"
                                )
                            continue
                        # depth-risky fold: walk it so the limit error
                        # surfaces in exactly the right frame
                        counts[call_row] += 1
                        self._execute_vector(
                            step[2], depth + 1, counts, rng,
                            max_depth, max_steps,
                        )
                    elif kind == VSTEP_CALL:
                        callee = step[2]
                        if callee is None:
                            raise ExecutionError(
                                f"call to undefined @{step[1].callee} "
                                f"in @{vfunc.name}"
                            )
                        counts[call_row] += 1
                        self._execute_vector(
                            callee, depth + 1, counts, rng,
                            max_depth, max_steps,
                        )
                    else:  # VSTEP_ICALL
                        _, inst, site, dist, names, cum, total, irow = step
                        if not dist:
                            raise ExecutionError(
                                f"icall without targets in @{vfunc.name}"
                            )
                        last_target = self._last_target
                        last = (
                            last_target.get(site)
                            if site is not None
                            else None
                        )
                        if (
                            last is not None
                            and last in dist
                            and rand() < self.target_stickiness
                        ):
                            target = last
                        elif total <= 0:
                            raise ValueError(
                                "distribution has zero total weight"
                            )
                        else:
                            target = names[pick_index(rng, cum, total)]
                        if site is not None:
                            last_target[site] = target
                        vtarget = program.resolve(target)
                        if vtarget is None:
                            raise ExecutionError(
                                f"icall resolved to undefined @{target} "
                                f"in @{vfunc.name}"
                            )
                        counts[irow] += 1
                        self._execute_vector(
                            vtarget, depth + 1, counts, rng,
                            max_depth, max_steps,
                        )
            if self._steps > max_steps:
                raise ExecutionError(
                    f"step limit {max_steps} exceeded "
                    f"(runaway loop in @{vfunc.name}?)"
                )

            term = node.term
            kind = term[0]
            if kind == VT_RET:
                return
            if kind == VT_BR:
                trip = term[3]
                if trip is None:
                    p = term[2]
                    if p >= 1.0:
                        taken = True
                    elif p <= 0.0:
                        taken = False
                    else:
                        taken = rand() < p
                    node = term[4] if taken else term[5]
                    continue
                if (
                    term[6]
                    and node.fast_row is not None
                    and depth + node.need_depth <= max_depth
                ):
                    # collapsed self-loop: body already ran once above
                    if trip:
                        counts[node.fast_row] += trip
                        self._steps += node.fast_charge * trip
                        if self._steps > max_steps:
                            raise ExecutionError(
                                f"step limit {max_steps} exceeded "
                                f"(runaway loop in @{vfunc.name}?)"
                            )
                    node = term[5]
                    continue
                if loops is None:
                    loops = LoopState()
                node = (
                    term[4]
                    if loops.take_back_edge(term[1], trip)
                    else term[5]
                )
                continue
            if kind == VT_SWITCH:
                _, succs, cum, total = term
                if cum is not None:
                    node = succs[pick_index(rng, cum, total)]
                else:
                    node = rng.choice(succs)
                continue
            if kind == VT_IJUMP:
                _, succs, cum, total = term
                if succs is None:
                    return  # opaque indirect tail transfer
                if cum is not None:
                    node = succs[pick_index(rng, cum, total)]
                else:
                    node = rng.choice(succs)
                continue
            if kind == VT_JMP:
                node = term[1]
                continue
            # VT_MISSING
            raise ExecutionError(
                f"block {term[1]!r} in @{vfunc.name} is unterminated"
            )


ENGINES["vectorized"] = VectorizedInterpreter
