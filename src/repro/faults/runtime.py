"""Fault-injection runtime: the active plan and the ``fire`` primitive.

The evaluation stack calls :func:`fire` at each injection point. With no
plan installed (the common case) the call is a handful of instructions —
fault injection is free when disabled. With a plan installed, the first
spec that matches the point and label and still has activations left
**fires**: behavioural modes (``crash``/``hang``/``raise``) act here,
data modes (``corrupt``/``truncate``) are returned to the caller, which
knows how to mangle its own payload.

Activation counting must be exact across processes — "crash one worker,
once" has to mean once globally, not once per worker — so counted specs
claim per-activation token files (``O_CREAT | O_EXCL``) in the plan's
``state_dir``. Claiming is atomic at the filesystem level; whichever
process creates the token fires, everyone else moves on.

Orchestrator safety: ``crash`` and ``hang`` only take their destructive
form inside processes marked as workers (:func:`mark_worker`, called by
the pool initializer). In the orchestrating process they degrade to
:class:`InjectedFault`, so a plan can never take down the process that is
collecting results.
"""

from __future__ import annotations

import fnmatch
import os
import tempfile
import time
from typing import Dict, Optional

from repro.faults.plan import ENV_VAR, FaultPlan, FaultSpec

#: Exit status of a worker killed by ``crash`` mode (visible in logs).
CRASH_EXIT_CODE = 23


class InjectedFault(RuntimeError):
    """Raised (or substituted for destruction) by a firing fault spec."""


_UNSET = object()  # "install() never called" vs "explicitly cleared"
_plan: object = _UNSET
_in_worker = False
_local_counts: Dict[int, int] = {}


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Make ``plan`` the active plan (``None`` disables injection).

    A plan with counted specs but no ``state_dir`` gets a fresh temporary
    one, so activation tokens are shared with any worker process the plan
    is later handed to. Returns the installed plan.
    """
    global _plan
    if plan is not None and plan.state_dir is None and any(
        spec.times is not None for spec in plan.specs
    ):
        plan.state_dir = tempfile.mkdtemp(prefix="repro-faults-")
    _plan = plan
    _local_counts.clear()
    return plan


def clear() -> None:
    """Disable fault injection (and stop consulting the environment)."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    """The current plan; lazily initialized from ``REPRO_FAULTS``.

    The environment is consulted only until the first explicit
    :func:`install`/:func:`clear`, so programmatic use is never surprised
    by a stale variable.
    """
    global _plan
    if _plan is _UNSET:
        install(FaultPlan.from_env())
    return _plan  # type: ignore[return-value]


def mark_worker() -> None:
    """Flag this process as a pool worker: destructive modes act for real."""
    global _in_worker
    _in_worker = True


def in_worker() -> bool:
    return _in_worker


def _claim(plan: FaultPlan, spec_index: int, spec: FaultSpec) -> bool:
    """Try to consume one activation of ``spec``; True if it should fire."""
    if spec.times is None:
        return True
    if plan.state_dir:
        os.makedirs(plan.state_dir, exist_ok=True)
        for n in range(spec.times):
            token = os.path.join(plan.state_dir, f"spec{spec_index}.{n}")
            try:
                fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False
    used = _local_counts.get(spec_index, 0)
    if used >= spec.times:
        return False
    _local_counts[spec_index] = used + 1
    return True


def fire(point: str, label: str) -> Optional[FaultSpec]:
    """Evaluate the active plan at an injection point.

    Behavioural modes act immediately (crash/hang/raise, softened to
    :class:`InjectedFault` outside workers); data modes return the spec
    for the call site to honor. ``None`` means nothing fired.
    """
    plan = active_plan()
    if plan is None:
        return None
    for index, spec in enumerate(plan.specs):
        if spec.point != point:
            continue
        if not fnmatch.fnmatchcase(label, spec.match):
            continue
        if not _claim(plan, index, spec):
            continue
        if spec.mode == "crash":
            if _in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFault(f"injected crash at {point} ({label})")
        if spec.mode == "hang":
            if _in_worker:
                time.sleep(spec.seconds)
                return None  # a slow worker, not a failed one
            raise InjectedFault(f"injected hang at {point} ({label})")
        if spec.mode == "raise":
            raise InjectedFault(f"injected fault at {point} ({label})")
        return spec  # corrupt / truncate: caller's responsibility
    return None


__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "InjectedFault",
    "active_plan",
    "clear",
    "fire",
    "in_worker",
    "install",
    "mark_worker",
]
