"""Fault injection for the evaluation stack (``repro.faults``).

The paper's tables are regenerated from thousands of (config, workload)
cells; this package provides the controlled failures — worker crashes,
hangs, transient exceptions, corrupt cache entries, truncated writes —
that prove the harness degrades gracefully instead of discarding a whole
regeneration on the first fault. See :mod:`repro.faults.plan` for the
plan format and injection-point catalog, :mod:`repro.faults.runtime` for
activation semantics.

Enable via :func:`install` (programmatic) or the ``REPRO_FAULTS``
environment variable (inline JSON or a plan-file path); the ``repro
faults`` CLI subcommand runs a canned stress scenario.
"""

from repro.faults.plan import (
    ENV_VAR,
    MODES,
    FaultPlan,
    FaultSpec,
    default_stress_plan,
)
from repro.faults.runtime import (
    CRASH_EXIT_CODE,
    InjectedFault,
    active_plan,
    clear,
    fire,
    in_worker,
    install,
    mark_worker,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_VAR",
    "MODES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear",
    "default_stress_plan",
    "fire",
    "in_worker",
    "install",
    "mark_worker",
]
