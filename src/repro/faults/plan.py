"""Fault plans: declarative descriptions of what to break, where and when.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries. Each spec
names an **injection point** (a string the instrumented code passes to
:func:`repro.faults.fire`), a **mode** (what happens when the spec fires),
an fnmatch **pattern** selecting which labels at that point are affected,
and an activation budget ``times`` (how many firings before the spec goes
dormant; ``None`` means it never does).

Injection points honored by the evaluation stack:

``measure.cell``
    Fired by :meth:`EvalContext.measure` before computing an uncached
    cell. The label is ``"<config.label()>@<workload>"``. Behavioural
    modes apply: ``crash`` (worker processes exit hard; the orchestrator
    process raises :class:`InjectedFault` instead — a fault plan must
    never kill the process driving the experiment), ``hang`` (worker
    sleeps ``seconds``; orchestrator raises) and ``raise``.

``cache.put``
    Fired by :meth:`DiskCache.put` with the entry kind (``"measure"``,
    ``"profile"``) as the label. Data modes apply: ``corrupt`` (the
    stored payload is replaced with garbage) and ``truncate`` (only a
    prefix of the JSON text is written) — both leave an entry that fails
    to parse, exercising the quarantine path.

Plans serialize to JSON so they can cross process boundaries via the
``REPRO_FAULTS`` environment variable (inline JSON or a file path).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Environment variable carrying a plan: inline JSON or a path to a file.
ENV_VAR = "REPRO_FAULTS"

#: What a firing spec does at its injection point.
MODES = ("crash", "hang", "raise", "corrupt", "truncate")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, whom it hits, how often."""

    point: str
    mode: str
    match: str = "*"
    #: Activations before the spec goes dormant; ``None`` = unlimited.
    times: Optional[int] = 1
    #: Sleep duration for ``hang`` mode.
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {MODES}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")


@dataclass
class FaultPlan:
    """An ordered list of fault specs plus shared activation state.

    ``state_dir`` holds one token file per claimed activation so that
    counted specs fire exactly ``times`` total across every process
    sharing the plan (workers under both fork and spawn); without it the
    count is tracked per process.
    """

    specs: List[FaultSpec] = field(default_factory=list)
    state_dir: Optional[str] = None

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "specs": [dataclasses.asdict(s) for s in self.specs],
            "state_dir": self.state_dir,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        specs = [FaultSpec(**spec) for spec in data.get("specs", [])]
        return cls(specs=specs, state_dir=data.get("state_dir"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if isinstance(data, list):  # bare spec list shorthand
            data = {"specs": data}
        return cls.from_dict(data)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Plan from ``REPRO_FAULTS``: inline JSON or a file path."""
        value = os.environ.get(ENV_VAR, "").strip()
        if not value:
            return None
        if value.startswith("{") or value.startswith("["):
            return cls.from_json(value)
        with open(value, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


def default_stress_plan() -> FaultPlan:
    """The plan behind ``repro faults``: one worker crash, one transient
    exception that retries to success, one permanently failing cell and
    one corrupted cache entry.

    The match patterns key on the budget components of
    :meth:`PibeConfig.label`, so they line up with the stress matrix the
    CLI builds (`icp=99%` is transient, `icp=99.99%` permanent).
    """
    return FaultPlan(
        specs=[
            FaultSpec(point="measure.cell", mode="crash", match="*", times=1),
            FaultSpec(
                point="measure.cell",
                mode="raise",
                match="*icp=99%*",
                times=2,
            ),
            FaultSpec(
                point="measure.cell",
                mode="raise",
                match="*icp=99.99%*",
                times=None,
            ),
            FaultSpec(point="cache.put", mode="corrupt", match="measure", times=1),
        ]
    )
