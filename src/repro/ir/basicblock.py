"""Basic blocks: labelled straight-line instruction sequences ending in a
terminator. Successor edges are encoded on the terminator instruction."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.ir.instruction import Instruction
from repro.ir.types import Opcode


class BasicBlock:
    """A labelled sequence of instructions with a single terminator."""

    __slots__ = ("label", "instructions")

    def __init__(
        self, label: str, instructions: Optional[Iterable[Instruction]] = None
    ) -> None:
        self.label = label
        self.instructions: List[Instruction] = (
            list(instructions) if instructions is not None else []
        )

    # -- accessors -----------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or ``None`` if the block is unterminated
        (legal only mid-construction)."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if term is None or term.opcode in (Opcode.RET, Opcode.IJUMP):
            return ()
        return term.targets

    def body(self) -> List[Instruction]:
        """All instructions except the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    # -- mutation -------------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(
                f"block {self.label!r} is already terminated; cannot append"
            )
        self.instructions.append(inst)
        return inst

    def replace(self, index: int, new_insts: Iterable[Instruction]) -> None:
        """Replace the instruction at ``index`` with a sequence."""
        self.instructions[index : index + 1] = list(new_insts)

    def clone(self, new_label: str) -> "BasicBlock":
        return BasicBlock(
            new_label, [inst.clone() for inst in self.instructions]
        )

    # -- iteration -------------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} [{len(self.instructions)} insts]>"
