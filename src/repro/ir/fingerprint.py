"""Stable structural fingerprints for IR objects.

The evaluation's on-disk cache needs a key that says "this is byte-for-
byte the same program" without serializing whole modules into every key.
A fingerprint is a SHA-256 over a canonical rendering of a function's
structure: blocks in insertion order, each instruction's opcode, callee,
successor labels, argument count and attributes (dict attributes sorted
by key so hash ordering never leaks in).

Site ids are *included* by default: they are what profiles are keyed on,
so two modules that differ only in id assignment (e.g. built at different
points of one process's lifetime) must not share profile cache entries.
Pass ``include_sites=False`` for an id-insensitive fingerprint — the
right key for artifacts that only depend on program *shape*, like
measured cycles per operation.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.ir.function import Function
from repro.ir.module import Module


def _canon(value) -> object:
    """Render an attribute value into a deterministically ordered form."""
    if isinstance(value, dict):
        return tuple(sorted((k, _canon(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _function_text(func: Function, include_sites: bool) -> Iterable[str]:
    yield (
        f"func {func.name} params={func.num_params} "
        f"frame={func.stack_frame_size} subsystem={func.subsystem} "
        f"attrs={sorted(a.value for a in func.attrs)} "
        f"entry={func.entry_label}"
    )
    for label, block in func.blocks.items():
        yield f"block {label}"
        for inst in block.instructions:
            site = inst.site_id if include_sites else None
            yield (
                f"  {inst.opcode.value} callee={inst.callee} "
                f"targets={inst.targets} args={inst.num_args} "
                f"site={site} attrs={_canon(inst.attrs)}"
            )


def function_fingerprint(func: Function, include_sites: bool = True) -> str:
    """Hex SHA-256 of one function's canonical structure."""
    digest = hashlib.sha256()
    for line in _function_text(func, include_sites):
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def module_fingerprint(module: Module, include_sites: bool = True) -> str:
    """Hex SHA-256 over every function plus tables, syscalls and metadata.

    Functions are hashed in sorted-name order, so two modules whose
    functions were registered in different orders but are otherwise
    identical fingerprint identically.
    """
    digest = hashlib.sha256()
    for name in sorted(module.functions):
        digest.update(name.encode())
        digest.update(
            function_fingerprint(
                module.functions[name], include_sites=include_sites
            ).encode()
        )
    for name in sorted(module.fptr_tables):
        table = module.fptr_tables[name]
        digest.update(f"table {name} {table.entries}".encode())
    for syscall in sorted(module.syscalls):
        digest.update(f"syscall {syscall} {module.syscalls[syscall]}".encode())
    for key in sorted(module.metadata):
        digest.update(f"meta {key} {module.metadata[key]!r}".encode())
    return digest.hexdigest()
