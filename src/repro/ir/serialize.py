"""Exact JSON (de)serialization of IR modules.

The textual printer/parser pair (:mod:`repro.ir.printer` /
:mod:`repro.ir.parser`) is the human-facing format: readable, hand-editable,
and deliberately lossy about bookkeeping that people don't care about
(stack frame sizes, subsystem tags, module metadata). The staged build
engine's disk-cached optimized-prefix modules need the opposite trade —
a machine format whose round trip is *exact*: ``module_from_dict(
module_to_dict(m))`` fingerprints identically to ``m`` with
``include_sites=True``, so a variant stamped on a disk-loaded prefix is
bit-identical to one stamped on the freshly built prefix.

Everything JSON can't express natively is covered explicitly:

- instruction ``site_id`` values survive verbatim and the global id
  allocator is advanced past the maximum restored id (like the parser);
- ``value_profile`` entries are restored as ``(target, count)`` tuples
  (the printer renders tuples and lists differently);
- function attribute sets and the applied :class:`DefenseConfig` (when a
  hardened module is serialized) round-trip through their enum values.

Free-form metadata is restricted to JSON-encodable values plus the known
special cases; ``json.dumps`` raises ``TypeError`` on anything else, which
callers treat as "not cacheable" rather than silently dropping state.
Encode payloads *without* ``sort_keys`` — metadata values can be dicts
whose ``repr`` (hence the module fingerprint) is insertion-order
sensitive, and plain ``json.dumps`` preserves that order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction, reserve_site_ids
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import ATTR_VALUE_PROFILE, FunctionAttr, Opcode

#: Bump when the layout changes so stale disk payloads never deserialize.
SERIAL_VERSION = "ir-json-v1"

_METADATA_DEFENSE_MARKER = "__defense_config__"

#: Enum lookup by value — ``Opcode(value)`` dispatches through
#: ``EnumMeta.__call__`` on every instruction, which dominates decode
#: time for a multi-thousand-function module; a plain dict get does not.
_OPCODE_BY_VALUE = {member.value: member for member in Opcode}


def _encode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for key, value in attrs.items():
        if key == ATTR_VALUE_PROFILE:
            value = [[t, c] for t, c in value]
        encoded[key] = value
    return encoded


def _decode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    decoded: Dict[str, Any] = {}
    for key, value in attrs.items():
        if key == ATTR_VALUE_PROFILE:
            value = [(str(t), int(c)) for t, c in value]
        decoded[key] = value
    return decoded


def _instruction_to_dict(inst: Instruction) -> Dict[str, Any]:
    data: Dict[str, Any] = {"op": inst.opcode.value}
    if inst.callee is not None:
        data["callee"] = inst.callee
    if inst.targets:
        data["targets"] = list(inst.targets)
    if inst.num_args:
        data["args"] = inst.num_args
    if inst.site_id is not None:
        data["site"] = inst.site_id
    if inst.attrs:
        data["attrs"] = _encode_attrs(inst.attrs)
    return data


def _instruction_from_dict(data: Dict[str, Any]) -> Instruction:
    inst = Instruction.__new__(Instruction)
    inst.opcode = _OPCODE_BY_VALUE[data["op"]]
    inst.callee = data.get("callee")
    inst.targets = tuple(data.get("targets", ()))
    inst.num_args = int(data.get("args", 0))
    inst.site_id = data.get("site")
    attrs = data.get("attrs")
    inst.attrs = _decode_attrs(attrs) if attrs else {}
    return inst


def _function_to_dict(func: Function) -> Dict[str, Any]:
    return {
        "name": func.name,
        "params": func.num_params,
        "attrs": sorted(a.value for a in func.attrs),
        "frame": func.stack_frame_size,
        "subsystem": func.subsystem,
        "entry": func.entry_label,
        "blocks": [
            {
                "label": block.label,
                "insts": [_instruction_to_dict(i) for i in block.instructions],
            }
            for block in func.blocks.values()
        ],
    }


def _function_from_dict(data: Dict[str, Any]) -> Function:
    func = Function(
        data["name"],
        num_params=int(data.get("params", 0)),
        attrs={FunctionAttr(v) for v in data.get("attrs", ())},
        stack_frame_size=int(data.get("frame", 32)),
        subsystem=data.get("subsystem", ""),
    )
    for block_data in data.get("blocks", ()):
        func.blocks[block_data["label"]] = BasicBlock(
            block_data["label"],
            [_instruction_from_dict(i) for i in block_data.get("insts", ())],
        )
    func.entry_label = data.get("entry")
    return func


def _encode_metadata(metadata: Dict[str, Any]) -> Dict[str, Any]:
    from repro.hardening.defenses import DefenseConfig

    encoded: Dict[str, Any] = {}
    for key, value in metadata.items():
        if isinstance(value, DefenseConfig):
            encoded[key] = {
                _METADATA_DEFENSE_MARKER: True,
                "retpolines": value.retpolines,
                "ret_retpolines": value.ret_retpolines,
                "lvi_cfi": value.lvi_cfi,
                "nontransient": sorted(d.value for d in value.nontransient),
            }
        else:
            encoded[key] = value  # json.dumps validates encodability later
    return encoded


def _decode_metadata(metadata: Dict[str, Any]) -> Dict[str, Any]:
    from repro.hardening.defenses import DefenseConfig, NonTransientDefense

    decoded: Dict[str, Any] = {}
    for key, value in metadata.items():
        if isinstance(value, dict) and value.get(_METADATA_DEFENSE_MARKER):
            decoded[key] = DefenseConfig(
                retpolines=bool(value["retpolines"]),
                ret_retpolines=bool(value["ret_retpolines"]),
                lvi_cfi=bool(value["lvi_cfi"]),
                nontransient=frozenset(
                    NonTransientDefense(v) for v in value["nontransient"]
                ),
            )
        else:
            decoded[key] = value
    return decoded


def module_to_dict(module: Module) -> Dict[str, Any]:
    """Render ``module`` as JSON-encodable data with an exact round trip."""
    return {
        "serial_version": SERIAL_VERSION,
        "name": module.name,
        "functions": [
            _function_to_dict(f) for f in module.functions.values()
        ],
        "fptr_tables": [
            {"name": t.name, "entries": list(t.entries)}
            for t in module.fptr_tables.values()
        ],
        "syscalls": dict(module.syscalls),
        "metadata": _encode_metadata(module.metadata),
    }


def module_header_to_dict(module: Module) -> Dict[str, Any]:
    """The chunked codec's header half: everything in
    :func:`module_to_dict` except the function bodies, plus the explicit
    function order (chunks group functions by sorted name, so
    concatenating them would scramble module iteration order)."""
    return {
        "serial_version": SERIAL_VERSION,
        "name": module.name,
        "function_order": list(module.functions),
        "fptr_tables": [
            {"name": t.name, "entries": list(t.entries)}
            for t in module.fptr_tables.values()
        ],
        "syscalls": dict(module.syscalls),
        "metadata": _encode_metadata(module.metadata),
    }


def functions_to_chunk(
    funcs: Iterable[Function],
    dict_memo: Optional[Dict[int, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Render a group of functions as one chunk payload.

    ``dict_memo`` (keyed by ``id(func)``) reuses per-function dicts
    across calls — budget-ladder prefixes share untouched functions as
    identical objects, so each serializes once no matter how many
    entries (or chunk groupings) reference it. The caller must keep the
    functions alive for the memo's lifetime so ids cannot be recycled.
    """
    if dict_memo is None:
        dicts = [_function_to_dict(f) for f in funcs]
    else:
        dicts = []
        for func in funcs:
            cached = dict_memo.get(id(func))
            if cached is None:
                cached = _function_to_dict(func)
                dict_memo[id(func)] = cached
            dicts.append(cached)
    return {
        "serial_version": SERIAL_VERSION,
        "functions": dicts,
    }


def functions_from_chunk(
    data: Dict[str, Any]
) -> Tuple[Dict[str, Function], int]:
    """Decode one chunk payload into ``{name: Function}`` plus the maximum
    site id it contains (callers reserve the global allocator once over
    all chunks, mirroring :func:`module_from_dict`).

    Raises ``ValueError`` on a layout-version mismatch.
    """
    version = data.get("serial_version")
    if version != SERIAL_VERSION:
        raise ValueError(
            f"serialized chunk layout {version!r} != {SERIAL_VERSION!r}"
        )
    functions: Dict[str, Function] = {}
    max_site = 0
    for func_data in data.get("functions", ()):
        func = _function_from_dict(func_data)
        functions[func.name] = func
        for block in func.blocks.values():
            for inst in block.instructions:
                site = inst.site_id
                if site is not None and site > max_site:
                    max_site = site
    return functions, max_site


def module_from_header(
    header: Dict[str, Any], functions: Dict[str, Function]
) -> Module:
    """Assemble a module from a chunked-codec header and decoded bodies.

    ``functions`` may contain extras (shared decoded chunks hold whole
    name windows); only the header's ``function_order`` is consulted.
    Site-id reservation is the caller's job — the decoded chunks already
    reported their maxima. Raises ``ValueError`` on version mismatch or a
    body missing from ``functions``.
    """
    version = header.get("serial_version")
    if version != SERIAL_VERSION:
        raise ValueError(
            f"serialized module layout {version!r} != {SERIAL_VERSION!r}"
        )
    module = Module(header.get("name", "module"))
    for name in header.get("function_order", ()):
        func = functions.get(name)
        if func is None:
            raise ValueError(f"chunked module is missing function {name!r}")
        module.functions[name] = func
    for table in header.get("fptr_tables", ()):
        module.fptr_tables[table["name"]] = FunctionPointerTable(
            table["name"], list(table.get("entries", ()))
        )
    module.syscalls = dict(header.get("syscalls", {}))
    module.metadata = _decode_metadata(header.get("metadata", {}))
    return module


def module_from_dict(data: Dict[str, Any]) -> Module:
    """Rebuild a module serialized by :func:`module_to_dict`.

    Raises ``ValueError`` on a layout-version mismatch. Site ids are
    restored verbatim and the global allocator is advanced past the
    maximum, so instructions created afterwards never collide.
    """
    version = data.get("serial_version")
    if version != SERIAL_VERSION:
        raise ValueError(
            f"serialized module layout {version!r} != {SERIAL_VERSION!r}"
        )
    module = Module(data.get("name", "module"))
    max_site = 0
    for func_data in data.get("functions", ()):
        func = _function_from_dict(func_data)
        module.functions[func.name] = func
        for block in func.blocks.values():
            for inst in block.instructions:
                site = inst.site_id
                if site is not None and site > max_site:
                    max_site = site
    for table in data.get("fptr_tables", ()):
        module.fptr_tables[table["name"]] = FunctionPointerTable(
            table["name"], list(table.get("entries", ()))
        )
    module.syscalls = dict(data.get("syscalls", {}))
    module.metadata = _decode_metadata(data.get("metadata", {}))
    reserve_site_ids(max_site)
    return module
