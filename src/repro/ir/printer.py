"""Textual IR printer — an LLVM-`.ll`-flavoured dump for debugging and for
golden tests of transformations."""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_ASM_SITE,
    ATTR_CASE_WEIGHTS,
    ATTR_CLONED_FROM,
    ATTR_EDGE_COUNT,
    ATTR_FPTR_TABLE,
    ATTR_ICP_SITE,
    ATTR_P_TAKEN,
    ATTR_PROMOTED,
    ATTR_TARGETS,
    ATTR_TRIP,
    ATTR_VALUE_PROFILE,
    ATTR_VCALL,
    Opcode,
)


def format_instruction(inst: Instruction) -> str:
    """Render one instruction in the textual IR syntax."""
    op = inst.opcode
    if op == Opcode.CALL:
        text = f"call @{inst.callee}({inst.num_args} args)"
        if ATTR_PROMOTED in inst.attrs:
            text += " !promoted"
        if ATTR_EDGE_COUNT in inst.attrs:
            text += f" !count={inst.attrs[ATTR_EDGE_COUNT]}"
        if ATTR_ICP_SITE in inst.attrs:
            text += f" !icp_site={inst.attrs[ATTR_ICP_SITE]}"
        if ATTR_CLONED_FROM in inst.attrs:
            text += f" !cloned_from={inst.attrs[ATTR_CLONED_FROM]}"
    elif op == Opcode.ICALL:
        targets = inst.attrs.get(ATTR_TARGETS, {})
        dist = {t: targets[t] for t in sorted(targets)}
        text = f"icall *ptr({inst.num_args} args) ;; may-target {dist}"
        if inst.attrs.get(ATTR_VCALL):
            text += " !vcall"
        if inst.attrs.get(ATTR_ASM_SITE):
            text += " !asm"
        if inst.attrs.get(ATTR_FPTR_TABLE):
            text += f" !table={inst.attrs[ATTR_FPTR_TABLE]}"
        vp = inst.attrs.get(ATTR_VALUE_PROFILE)
        if vp:
            text += f" !vp={vp}"
        if ATTR_ICP_SITE in inst.attrs:
            text += f" !icp_site={inst.attrs[ATTR_ICP_SITE]}"
        if ATTR_CLONED_FROM in inst.attrs:
            text += f" !cloned_from={inst.attrs[ATTR_CLONED_FROM]}"
    elif op == Opcode.BR:
        text = f"br {inst.targets[0]}, {inst.targets[1]}"
        p_taken = inst.attrs.get(ATTR_P_TAKEN)
        if p_taken is not None and p_taken != 0.5:
            text += f" !p={p_taken!r}"
        trip = inst.attrs.get(ATTR_TRIP)
        if trip is not None:
            text += f" !trip={trip}"
    elif op == Opcode.JMP:
        text = f"jmp {inst.targets[0]}"
    elif op == Opcode.SWITCH:
        text = f"switch [{', '.join(inst.targets)}]"
        weights = inst.attrs.get(ATTR_CASE_WEIGHTS)
        if weights:
            text += f" !weights={list(weights)!r}"
    elif op == Opcode.IJUMP and inst.targets:
        text = f"ijump [{', '.join(inst.targets)}]"
        weights = inst.attrs.get(ATTR_CASE_WEIGHTS)
        if weights:
            text += f" !weights={list(weights)!r}"
    else:
        text = op.value
    if inst.defense:
        text += f" !defense={inst.defense}"
    if inst.site_id is not None:
        text += f" ;; site {inst.site_id}"
    return text


def format_function(func: Function) -> str:
    """Render one function definition in the textual IR syntax."""
    lines: List[str] = []
    attrs = " ".join(sorted(a.value for a in func.attrs))
    header = f"define @{func.name}({func.num_params} params)"
    if attrs:
        header += f" [{attrs}]"
    lines.append(header + " {")
    for block in func.blocks.values():
        lines.append(f"{block.label}:")
        for inst in block:
            lines.append(f"  {format_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module, max_functions: int = 0) -> str:
    """Render a whole module (optionally truncated to the first N
    functions for debugging dumps)."""
    lines = [f"; module {module.name}: {len(module)} functions"]
    for table in module.fptr_tables.values():
        lines.append(f"@{table.name} = fptr_table [{', '.join(table.entries)}]")
    names = list(module.functions)
    if max_functions:
        names = names[:max_functions]
    for name in names:
        lines.append("")
        lines.append(format_function(module.functions[name]))
    return "\n".join(lines)
