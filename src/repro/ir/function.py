"""IR functions: an entry block plus a labelled control-flow graph."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.instruction import Instruction
from repro.ir.types import FunctionAttr, Opcode


class Function:
    """A function: named, with parameters, attributes and a block CFG.

    Blocks are kept in insertion order; the first block added is the entry.
    ``subsystem`` tags which synthetic kernel subsystem the function belongs
    to (used for reporting, e.g. Table 9's syscall-handler analysis).
    """

    __slots__ = (
        "name",
        "num_params",
        "blocks",
        "entry_label",
        "attrs",
        "stack_frame_size",
        "subsystem",
    )

    def __init__(
        self,
        name: str,
        num_params: int = 0,
        attrs: Optional[Set[FunctionAttr]] = None,
        stack_frame_size: int = 32,
        subsystem: str = "",
    ) -> None:
        self.name = name
        self.num_params = num_params
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry_label: Optional[str] = None
        self.attrs: Set[FunctionAttr] = set(attrs) if attrs else set()
        self.stack_frame_size = stack_frame_size
        self.subsystem = subsystem

    # -- block management -------------------------------------------------

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.blocks:
            raise ValueError(
                f"duplicate block label {block.label!r} in {self.name!r}"
            )
        self.blocks[block.label] = block
        if self.entry_label is None:
            self.entry_label = block.label
        return block

    def new_block(self, label: str) -> BasicBlock:
        return self.add_block(BasicBlock(label))

    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[self.entry_label]

    def unique_label(self, base: str) -> str:
        """Return a block label derived from ``base`` not yet in use."""
        if base not in self.blocks:
            return base
        i = 1
        while f"{base}.{i}" in self.blocks:
            i += 1
        return f"{base}.{i}"

    # -- attribute helpers ---------------------------------------------------

    def has_attr(self, attr: FunctionAttr) -> bool:
        return attr in self.attrs

    @property
    def is_inlinable(self) -> bool:
        """Whether any pass may inline this function's body."""
        return not (
            FunctionAttr.NOINLINE in self.attrs
            or FunctionAttr.OPTNONE in self.attrs
            or FunctionAttr.INLINE_ASM in self.attrs
        )

    @property
    def is_instrumentable(self) -> bool:
        """Whether hardening passes may rewrite this function's branches
        (inline assembly is off-limits, paper Section 3)."""
        return FunctionAttr.INLINE_ASM not in self.attrs

    # -- queries ------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks.values():
            yield from block.instructions

    def call_sites(self) -> Iterator[Instruction]:
        for inst in self.instructions():
            if inst.is_call:
                yield inst

    def returns(self) -> List[Instruction]:
        return [i for i in self.instructions() if i.opcode == Opcode.RET]

    def size(self) -> int:
        """Total instruction count (static size proxy)."""
        return sum(len(b) for b in self.blocks.values())

    def is_recursive(self) -> bool:
        return any(
            inst.opcode == Opcode.CALL and inst.callee == self.name
            for inst in self.instructions()
        )

    def __repr__(self) -> str:
        return (
            f"<Function {self.name} blocks={len(self.blocks)} "
            f"size={self.size()}>"
        )
