"""IR instruction objects.

Every call-like instruction carries a globally unique, stable ``site_id``
assigned at construction time. Profiling keys edge counts by site id, which
is how profiles survive code motion: when the inliner clones an instruction
the clone receives a *fresh* id plus a ``cloned_from`` provenance attribute,
mirroring the paper's unique edge identifiers that map binary profiles back
to IR call sites (Section 7).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.ir.types import CALLS, INDIRECT_BRANCHES, TERMINATORS, Opcode

#: Highest site id handed out (or reserved) so far; the next fresh id is
#: always ``_max_issued + 1``, so allocation is a pure function of this
#: single integer — which is what makes :func:`site_id_checkpoint` sound.
_max_issued = 0


def _next_site_id() -> int:
    global _max_issued
    _max_issued += 1
    return _max_issued


def reserve_site_ids(up_to: int) -> None:
    """Mark every id <= ``up_to`` as taken.

    The textual IR parser restores the site ids recorded in a dump so
    profiles keyed on them stay valid; reserving the range keeps freshly
    built instructions from colliding with restored ids.
    """
    global _max_issued
    if up_to > _max_issued:
        _max_issued = up_to


def site_id_state() -> int:
    """Snapshot of the global site-id allocator (the highest issued id)."""
    return _max_issued


@contextlib.contextmanager
def site_id_checkpoint() -> Iterator[int]:
    """Run a block against a snapshotted site-id allocator, restoring it on
    exit.

    Fresh site ids are allocated from a process-global counter, so two
    otherwise identical builds performed in one process normally receive
    different ids for the instructions they create (ICP guards, inline
    clones). Differential tests that require *bit-identical* output — the
    staged-vs-monolithic build comparison — wrap each build in a
    checkpoint so both allocate the same id sequence.

    Only safe when the modules built inside separate checkpoints are never
    mixed under one profile: restoring the counter re-issues ids, which is
    exactly the point of the comparison but would alias sites if the
    resulting modules shared a profile universe.
    """
    global _max_issued
    saved = _max_issued
    try:
        yield saved
    finally:
        _max_issued = saved


class Instruction:
    """A single IR instruction.

    Parameters
    ----------
    opcode:
        The :class:`~repro.ir.types.Opcode` of this instruction.
    callee:
        Target function name for ``CALL`` instructions.
    targets:
        Successor block labels for terminators (``JMP``/``BR``/``SWITCH``).
    num_args:
        Argument count for call instructions (feeds InlineCost).
    attrs:
        Free-form attribute dictionary (see :mod:`repro.ir.types`).
    """

    __slots__ = ("opcode", "callee", "targets", "num_args", "attrs", "site_id")

    def __init__(
        self,
        opcode: Opcode,
        callee: Optional[str] = None,
        targets: Tuple[str, ...] = (),
        num_args: int = 0,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.opcode = opcode
        self.callee = callee
        self.targets = tuple(targets)
        self.num_args = num_args
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        if opcode in CALLS:
            self.site_id: Optional[int] = _next_site_id()
        else:
            self.site_id = None

    # -- classification helpers -------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_call(self) -> bool:
        return self.opcode in CALLS

    @property
    def is_indirect_branch(self) -> bool:
        return self.opcode in INDIRECT_BRANCHES

    @property
    def defense(self) -> Optional[str]:
        """Name of the defense lowering applied to this branch, if any."""
        return self.attrs.get("defense")

    @defense.setter
    def defense(self, value: Optional[str]) -> None:
        if value is None:
            self.attrs.pop("defense", None)
        else:
            self.attrs["defense"] = value

    # -- structural operations ---------------------------------------------

    def clone(self, fresh_site_id: bool = True) -> "Instruction":
        """Deep-copy this instruction.

        Call instructions get a fresh ``site_id`` and record their origin in
        ``attrs['cloned_from']`` so inherited profile weights can be traced.
        """
        new = Instruction.__new__(Instruction)
        new.opcode = self.opcode
        new.callee = self.callee
        new.targets = self.targets
        new.num_args = self.num_args
        new.attrs = dict(self.attrs)
        if self.site_id is not None and fresh_site_id:
            new.site_id = _next_site_id()
            new.attrs.setdefault("cloned_from", self.site_id)
        else:
            new.site_id = self.site_id
        return new

    def retarget(self, mapping: Dict[str, str]) -> None:
        """Rewrite successor labels through ``mapping`` (used when cloning
        blocks into a new function during inlining)."""
        if self.targets:
            self.targets = tuple(mapping.get(t, t) for t in self.targets)

    def __repr__(self) -> str:
        parts = [self.opcode.value]
        if self.callee is not None:
            parts.append(self.callee)
        if self.targets:
            parts.append("->" + ",".join(self.targets))
        if self.site_id is not None:
            parts.append(f"#{self.site_id}")
        return f"<{' '.join(parts)}>"
