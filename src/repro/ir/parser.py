"""Textual IR parser — the inverse of :mod:`repro.ir.printer`.

Parses the `.ll`-flavoured dump format so modules can be stored as text,
edited by hand for tests, and round-tripped:

    ; module demo: 2 functions
    @ops = fptr_table [helper]

    define @helper(1 params) {
    entry:
      arith
      ret
    }

    define @main(0 params) [noinline] {
    entry:
      call @helper(1 args) !count=42
      icall *ptr(2 args) ;; may-target ['helper'] !vp=[('helper', 7)]
      br then, else
    then:
      ret
    else:
      ret
    }

The parser accepts everything the printer emits (including defense tags,
promotion markers, and value-profile metadata) plus ``syscall`` directive
lines for entry points.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import (
    ATTR_ASM_SITE,
    ATTR_CASE_WEIGHTS,
    ATTR_EDGE_COUNT,
    ATTR_CLONED_FROM,
    ATTR_FPTR_TABLE,
    ATTR_ICP_SITE,
    ATTR_P_TAKEN,
    ATTR_PROMOTED,
    ATTR_TARGETS,
    ATTR_TRIP,
    ATTR_VALUE_PROFILE,
    ATTR_VCALL,
    FunctionAttr,
    Opcode,
)


class ParseError(Exception):
    """Malformed textual IR; message includes the offending line."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line
        self.reason = reason


_TABLE_RE = re.compile(r"^@(\w+)\s*=\s*fptr_table\s*\[(.*)\]$")
_DEFENSES_RE = re.compile(
    r"^defenses\s+retpolines=([01])\s+ret_retpolines=([01])\s+lvi_cfi=([01])"
    r"(?:\s+nontransient=\[([^\]]*)\])?$"
)
_SYSCALL_RE = re.compile(r"^syscall\s+(\w+)\s*->\s*@(\w+)$")
_DEFINE_RE = re.compile(
    r"^define\s+@([\w.]+)\((\d+)\s+params\)(?:\s+\[([^\]]*)\])?\s*\{$"
)
_LABEL_RE = re.compile(r"^([\w.\-]+):$")
_CALL_RE = re.compile(r"^call\s+@([\w.]+)\((\d+)\s+args\)(.*)$")
_ICALL_RE = re.compile(
    r"^icall\s+\*ptr\((\d+)\s+args\)\s*;;\s*may-target\s*"
    r"(\[[^\]]*\]|\{[^}]*\})(.*)$"
)
_BR_RE = re.compile(r"^br\s+([\w.\-]+),\s*([\w.\-]+)(.*)$")
_IJUMP_TABLE_RE = re.compile(r"^ijump\s+\[([^\]]*)\](.*)$")
_P_RE = re.compile(r"!p=([0-9.eE+\-]+)")
_TRIP_RE = re.compile(r"!trip=(\d+)")
_WEIGHTS_RE = re.compile(r"!weights=(\[[^\]]*\])")
_JMP_RE = re.compile(r"^jmp\s+([\w.\-]+)(.*)$")
_SWITCH_RE = re.compile(r"^switch\s+\[([^\]]*)\](.*)$")
_SITE_RE = re.compile(r";;\s*site\s+\d+")
_COUNT_RE = re.compile(r"!count=(\d+)")
_ICP_SITE_RE = re.compile(r"!icp_site=(\d+)")
_CLONED_FROM_RE = re.compile(r"!cloned_from=(\d+)")
_VP_RE = re.compile(r"!vp=(\[.*?\])(?:\s|$|;)")
_DEFENSE_RE = re.compile(r"!defense=([\w]+)")
_FPTR_TABLE_RE = re.compile(r"!table=([\w.]+)")

_SIMPLE_OPCODES = {
    "arith": Opcode.ARITH,
    "cmp": Opcode.CMP,
    "load": Opcode.LOAD,
    "store": Opcode.STORE,
    "fence": Opcode.FENCE,
    "ret": Opcode.RET,
    "ijump": Opcode.IJUMP,
}

_ATTRS_BY_VALUE = {attr.value: attr for attr in FunctionAttr}


def _strip_site_comment(text: str) -> str:
    return _SITE_RE.sub("", text).strip()


def _parse_metadata(inst: Instruction, trailer: str) -> None:
    count = _COUNT_RE.search(trailer)
    if count:
        inst.attrs[ATTR_EDGE_COUNT] = int(count.group(1))
    if "!promoted" in trailer:
        inst.attrs[ATTR_PROMOTED] = True
    icp_site = _ICP_SITE_RE.search(trailer)
    if icp_site:
        inst.attrs[ATTR_ICP_SITE] = int(icp_site.group(1))
    cloned_from = _CLONED_FROM_RE.search(trailer)
    if cloned_from:
        inst.attrs[ATTR_CLONED_FROM] = int(cloned_from.group(1))
    vp = _VP_RE.search(trailer)
    if vp:
        pairs = ast.literal_eval(vp.group(1))
        inst.attrs[ATTR_VALUE_PROFILE] = [
            (str(name), int(c)) for name, c in pairs
        ]
    defense = _DEFENSE_RE.search(trailer)
    if defense:
        inst.defense = defense.group(1)


_SITE_VALUE_RE = re.compile(r";;\s*site\s+(\d+)")


def parse_instruction(text: str, line_no: int = 0) -> Instruction:
    """Parse one instruction line (without indentation).

    A trailing ``;; site N`` comment restores the instruction's original
    site id (keeping profiles keyed on it valid); the global id counter
    is advanced past every restored id.
    """
    site_match = _SITE_VALUE_RE.search(text)
    restored_site = int(site_match.group(1)) if site_match else None
    text = _strip_site_comment(text.strip())
    inst = _parse_instruction_body(text, line_no)
    if restored_site is not None and inst.is_call:
        from repro.ir.instruction import reserve_site_ids

        inst.site_id = restored_site
        reserve_site_ids(restored_site)
    return inst


def _parse_instruction_body(text: str, line_no: int) -> Instruction:

    match = _CALL_RE.match(text)
    if match:
        inst = Instruction(
            Opcode.CALL, callee=match.group(1), num_args=int(match.group(2))
        )
        _parse_metadata(inst, match.group(3))
        return inst

    match = _ICALL_RE.match(text)
    if match:
        targets = ast.literal_eval(match.group(2))
        if isinstance(targets, dict):
            dist = {str(t): int(w) for t, w in targets.items()}
        else:
            dist = {str(t): 1 for t in targets}
        inst = Instruction(
            Opcode.ICALL,
            num_args=int(match.group(1)),
            attrs={ATTR_TARGETS: dist},
        )
        trailer = match.group(3)
        _parse_metadata(inst, trailer)
        if "!vcall" in trailer:
            inst.attrs[ATTR_VCALL] = True
        if "!asm" in trailer:
            inst.attrs[ATTR_ASM_SITE] = True
        table = _FPTR_TABLE_RE.search(trailer)
        if table:
            inst.attrs[ATTR_FPTR_TABLE] = table.group(1)
        return inst

    match = _BR_RE.match(text)
    if match:
        trailer = match.group(3)
        attrs = {}
        p_match = _P_RE.search(trailer)
        if p_match:
            attrs[ATTR_P_TAKEN] = float(p_match.group(1))
        trip_match = _TRIP_RE.search(trailer)
        if trip_match:
            attrs[ATTR_TRIP] = int(trip_match.group(1))
        inst = Instruction(
            Opcode.BR, targets=(match.group(1), match.group(2)), attrs=attrs
        )
        _parse_metadata(inst, trailer)
        return inst

    match = _IJUMP_TABLE_RE.match(text)
    if match:
        cases = tuple(
            c.strip() for c in match.group(1).split(",") if c.strip()
        )
        trailer = match.group(2)
        attrs = {}
        weights = _WEIGHTS_RE.search(trailer)
        if weights:
            attrs[ATTR_CASE_WEIGHTS] = list(ast.literal_eval(weights.group(1)))
        inst = Instruction(Opcode.IJUMP, targets=cases, attrs=attrs)
        _parse_metadata(inst, trailer)
        return inst

    match = _JMP_RE.match(text)
    if match:
        inst = Instruction(Opcode.JMP, targets=(match.group(1),))
        _parse_metadata(inst, match.group(2))
        return inst

    match = _SWITCH_RE.match(text)
    if match:
        cases = tuple(
            c.strip() for c in match.group(1).split(",") if c.strip()
        )
        trailer = match.group(2)
        attrs = {}
        weights = _WEIGHTS_RE.search(trailer)
        if weights:
            attrs[ATTR_CASE_WEIGHTS] = list(ast.literal_eval(weights.group(1)))
        inst = Instruction(Opcode.SWITCH, targets=cases, attrs=attrs)
        _parse_metadata(inst, trailer)
        return inst

    head = text.split()[0] if text.split() else ""
    opcode = _SIMPLE_OPCODES.get(head)
    if opcode is not None:
        inst = Instruction(opcode)
        _parse_metadata(inst, text[len(head):])
        return inst

    raise ParseError(line_no, text, "unrecognized instruction")


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse a full textual module dump."""
    module = Module(name=name)
    current_function: Optional[Function] = None
    current_block: Optional[BasicBlock] = None
    pending_tables: List[Tuple[int, str, List[str]]] = []
    pending_syscalls: List[Tuple[int, str, str]] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("; module"):
            match = re.match(r"^; module (\S+):", line)
            if match:
                module.name = match.group(1)
            continue
        if line.startswith(";"):
            continue

        match = _TABLE_RE.match(line)
        if match:
            entries = [
                e.strip() for e in match.group(2).split(",") if e.strip()
            ]
            pending_tables.append((line_no, match.group(1), entries))
            continue

        match = _SYSCALL_RE.match(line)
        if match:
            pending_syscalls.append((line_no, match.group(1), match.group(2)))
            continue

        match = _DEFENSES_RE.match(line)
        if match:
            from repro.hardening.defenses import (
                DefenseConfig,
                NonTransientDefense,
            )
            from repro.hardening.harden import METADATA_KEY

            nontransient = frozenset(
                NonTransientDefense(token.strip())
                for token in (match.group(4) or "").split(",")
                if token.strip()
            )
            module.metadata[METADATA_KEY] = DefenseConfig(
                retpolines=match.group(1) == "1",
                ret_retpolines=match.group(2) == "1",
                lvi_cfi=match.group(3) == "1",
                nontransient=nontransient,
            )
            continue

        match = _DEFINE_RE.match(line)
        if match:
            if current_function is not None:
                raise ParseError(line_no, line, "nested function definition")
            attrs = set()
            if match.group(3):
                for token in match.group(3).split():
                    attr = _ATTRS_BY_VALUE.get(token)
                    if attr is None:
                        raise ParseError(
                            line_no, line, f"unknown attribute {token!r}"
                        )
                    attrs.add(attr)
            current_function = Function(
                match.group(1), num_params=int(match.group(2)), attrs=attrs
            )
            current_block = None
            continue

        if line == "}":
            if current_function is None:
                raise ParseError(line_no, line, "unmatched closing brace")
            module.add_function(current_function)
            current_function = None
            current_block = None
            continue

        match = _LABEL_RE.match(line)
        if match and current_function is not None:
            current_block = BasicBlock(match.group(1))
            current_function.add_block(current_block)
            continue

        if current_function is None:
            raise ParseError(line_no, line, "instruction outside function")
        if current_block is None:
            raise ParseError(line_no, line, "instruction before block label")
        current_block.instructions.append(parse_instruction(line, line_no))

    if current_function is not None:
        raise ParseError(0, "", "unterminated function definition")

    for line_no, table_name, entries in pending_tables:
        module.add_fptr_table(FunctionPointerTable(table_name, entries))
    for line_no, syscall, handler in pending_syscalls:
        if handler not in module:
            raise ParseError(
                line_no, f"syscall {syscall}", f"unknown handler @{handler}"
            )
        module.register_syscall(syscall, handler)
    return module


def dump_module(module: Module) -> str:
    """Serialize a module to parseable text: printer output plus syscall
    directives and the applied defense configuration."""
    from repro.ir.printer import format_module

    lines = [format_module(module)]
    if module.syscalls:
        lines.append("")
        for syscall, handler in module.syscalls.items():
            lines.append(f"syscall {syscall} -> @{handler}")

    from repro.hardening.harden import METADATA_KEY

    config = module.metadata.get(METADATA_KEY)
    if config is not None and (
        getattr(config, "any_transient", False)
        or getattr(config, "nontransient", None)
    ):
        nontransient = ",".join(
            sorted(d.value for d in config.nontransient)
        )
        lines.append("")
        lines.append(
            f"defenses retpolines={int(config.retpolines)} "
            f"ret_retpolines={int(config.ret_retpolines)} "
            f"lvi_cfi={int(config.lvi_cfi)}"
            + (f" nontransient=[{nontransient}]" if nontransient else "")
        )
    return "\n".join(lines)
