"""Static call graph construction over a module.

Nodes are function names; edges carry the call sites realizing them.
Indirect edges are derived from each ICALL's ground-truth target set (what
a points-to analysis would conservatively produce for the real kernel).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import ATTR_TARGETS, Opcode


class CallEdge(NamedTuple):
    """One static call-graph edge."""

    caller: str
    callee: str
    site_id: int
    indirect: bool


class CallGraph:
    """Adjacency view of a module's calls, with reverse edges."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.edges: List[CallEdge] = []
        #: caller name -> outgoing edges
        self.out_edges: Dict[str, List[CallEdge]] = defaultdict(list)
        #: callee name -> incoming edges
        self.in_edges: Dict[str, List[CallEdge]] = defaultdict(list)
        #: site id -> (function name, instruction)
        self.sites: Dict[int, Tuple[str, Instruction]] = {}
        self._build()

    def _build(self) -> None:
        for func in self.module:
            for inst in func.call_sites():
                assert inst.site_id is not None
                self.sites[inst.site_id] = (func.name, inst)
                if inst.opcode == Opcode.CALL:
                    self._add_edge(func.name, inst.callee, inst.site_id, False)
                else:
                    for target in inst.attrs.get(ATTR_TARGETS, {}):
                        self._add_edge(func.name, target, inst.site_id, True)

    def _add_edge(
        self, caller: str, callee: Optional[str], site_id: int, indirect: bool
    ) -> None:
        if callee is None or callee not in self.module:
            return
        edge = CallEdge(caller, callee, site_id, indirect)
        self.edges.append(edge)
        self.out_edges[caller].append(edge)
        self.in_edges[callee].append(edge)

    # -- queries -----------------------------------------------------------

    def callees(self, name: str) -> Set[str]:
        return {e.callee for e in self.out_edges.get(name, ())}

    def callers(self, name: str) -> Set[str]:
        return {e.caller for e in self.in_edges.get(name, ())}

    def site_location(self, site_id: int) -> Tuple[str, Instruction]:
        return self.sites[site_id]

    def reachable_from(self, roots: List[str]) -> Set[str]:
        """Functions transitively reachable from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.module]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees(name) - seen)
        return seen

    def bottom_up_order(self) -> List[str]:
        """Functions ordered callees-before-callers (SCCs broken by name),
        the traversal order of LLVM's default inliner (Section 8.4)."""
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        for root in sorted(self.module.functions):
            if root in state:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [
                (root, iter(sorted(self.callees(root))))
            ]
            state[root] = 0
            while stack:
                name, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in state:
                        state[nxt] = 0
                        stack.append((nxt, iter(sorted(self.callees(nxt)))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    state[name] = 1
                    order.append(name)
        return order

    def __repr__(self) -> str:
        return f"<CallGraph nodes={len(self.module)} edges={len(self.edges)}>"
