"""Function-body cloning and call-site splicing — the mechanical half of
inlining (the policy half lives in :mod:`repro.passes.inliner`).

``inline_call`` performs the transformation of Listing 1: the call site is
replaced by a jump into a freshly cloned copy of the callee's CFG, and every
``ret`` in the clone becomes a jump to the continuation block holding the
caller's remaining instructions. The call *and* the callee's returns
disappear from the dynamic path — eliminating one forward edge (if the call
was promoted from an indirect one) and one backward edge per execution.
"""

from __future__ import annotations

import contextlib
import copy
from typing import Dict, Iterator, List, NamedTuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.types import (
    ATTR_CLONED_FROM,
    ATTR_EDGE_COUNT,
    ATTR_ICP_SITE,
    ATTR_PROMOTED,
    METADATA_INLINED_PROMOTED,
    Opcode,
)

#: Serial for the `inl{N}.` label prefix of spliced callee blocks. A plain
#: int (not itertools.count) so :func:`inline_serial_checkpoint` can save
#: and restore it — differential staged-vs-monolithic builds need both
#: builds to mint identical labels.
_inline_serial = 0


def _next_inline_serial() -> int:
    global _inline_serial
    _inline_serial += 1
    return _inline_serial


@contextlib.contextmanager
def inline_serial_checkpoint() -> Iterator[int]:
    """Snapshot/restore the inline-label serial around a block, the label
    counterpart of :func:`repro.ir.instruction.site_id_checkpoint` (use
    both for bit-identical differential builds)."""
    global _inline_serial
    saved = _inline_serial
    try:
        yield saved
    finally:
        _inline_serial = saved


def record_inlined_promotion(module: Module, inst: Instruction) -> None:
    """Log that an inliner is about to consume a promoted direct call.

    Only *original* promotion artifacts are recorded (clones carry scaled
    duplicate weight). The record lets the flow-conservation analysis
    keep accounting for profile weight whose call instruction no longer
    exists. Inliners call this unconditionally at startup via
    ``module.metadata.setdefault`` so the (possibly empty) record also
    marks "provenance available" for the analyzer.
    """
    if (
        inst.opcode != Opcode.CALL
        or not inst.attrs.get(ATTR_PROMOTED)
        or ATTR_ICP_SITE not in inst.attrs
        or ATTR_CLONED_FROM in inst.attrs
    ):
        return
    records = module.metadata.setdefault(METADATA_INLINED_PROMOTED, [])
    records.append(
        {
            "site": inst.attrs[ATTR_ICP_SITE],
            "target": inst.callee,
            "count": inst.attrs.get(ATTR_EDGE_COUNT, 0),
        }
    )


def clone_instruction_exact(inst: Instruction) -> Instruction:
    """Copy one instruction preserving its ``site_id``.

    Attribute values are copied one container level deep — the IR's
    attribute vocabulary (:mod:`repro.ir.types`) only ever nests scalars
    inside a dict/list/tuple, so this fully isolates the clone while
    skipping generic-deepcopy dispatch.
    """
    new = Instruction.__new__(Instruction)
    new.opcode = inst.opcode
    new.callee = inst.callee
    new.targets = inst.targets
    new.num_args = inst.num_args
    new.site_id = inst.site_id
    attrs = inst.attrs
    if attrs:
        copied = {}
        for key, value in attrs.items():
            if type(value) is dict:
                value = dict(value)
            elif type(value) is list:
                value = list(value)
            copied[key] = value
        new.attrs = copied
    else:
        new.attrs = {}
    return new


def clone_function_exact(func: Function) -> Function:
    """Deep-copy one function preserving its name, labels and site ids.

    The building block of both eager module cloning and copy-on-write
    materialization (:meth:`repro.ir.module.Module.mutable`). The
    instruction copy is open-coded rather than delegated to
    :func:`clone_instruction_exact` — hardening materializes nearly the
    whole module under a dense defense config, making this the hottest
    loop of a staged variant build, and the per-instruction call overhead
    alone was a measurable fraction of stamp time.
    """
    cloned = Function(
        func.name,
        num_params=func.num_params,
        attrs=set(func.attrs),
        stack_frame_size=func.stack_frame_size,
        subsystem=func.subsystem,
    )
    blocks = cloned.blocks
    new_inst = Instruction.__new__
    for label, block in func.blocks.items():
        insts = []
        for inst in block.instructions:
            new = new_inst(Instruction)
            new.opcode = inst.opcode
            new.callee = inst.callee
            new.targets = inst.targets
            new.num_args = inst.num_args
            new.site_id = inst.site_id
            attrs = inst.attrs
            if attrs:
                copied = {}
                for key, value in attrs.items():
                    if type(value) is dict:
                        value = dict(value)
                    elif type(value) is list:
                        value = list(value)
                    copied[key] = value
                new.attrs = copied
            else:
                new.attrs = {}
            insts.append(new)
        new_block = BasicBlock(label)
        new_block.instructions = insts
        blocks[label] = new_block
    cloned.entry_label = func.entry_label
    return cloned


def clone_function_shell(func: Function) -> Function:
    """Copy a function's skeleton, sharing its blocks and instructions.

    The block-granular complement of :func:`clone_function_exact`, for
    :meth:`repro.ir.module.Module.mutable_shell`: the returned function
    owns its ``blocks`` dict (labels can be rebound to private blocks)
    while the :class:`BasicBlock` objects themselves remain shared with
    the source. The caller is responsible for copying a block before
    mutating anything inside it.
    """
    cloned = Function(
        func.name,
        num_params=func.num_params,
        attrs=set(func.attrs),
        stack_frame_size=func.stack_frame_size,
        subsystem=func.subsystem,
    )
    cloned.blocks.update(func.blocks)
    cloned.entry_label = func.entry_label
    return cloned


def clone_module(module: Module, cow: bool = False) -> Module:
    """Fast whole-module deep clone preserving site ids.

    Equivalent to ``copy.deepcopy`` for the IR object graph but an order
    of magnitude faster — the pipeline clones the linked baseline for
    every profiling run and every built variant, which made generic
    deepcopy the single hottest operation of an evaluation sweep. Site
    ids survive verbatim so profiles collected against the original
    remain liftable onto the clone.

    With ``cow=True`` the clone is *copy-on-write at function
    granularity*: the returned module initially shares every
    :class:`Function` object with ``module`` and records them as shared;
    a function is deep-copied only when first materialized through
    :meth:`Module.mutable`. Hardening and ICP touch a small fraction of
    functions per variant, so a COW clone makes stamping a variant cost
    proportional to what the variant actually changes. The source module
    must be treated as immutable while clones share its functions (the
    pipeline's baseline and cached prefix modules are).
    """
    new = Module(module.name)
    if cow:
        new.functions = dict(module.functions)
        new._cow_shared = set(module.functions)
    else:
        for func in module.functions.values():
            new.functions[func.name] = clone_function_exact(func)
    for name, table in module.fptr_tables.items():
        new.fptr_tables[name] = FunctionPointerTable(
            name, list(table.entries)
        )
    new.syscalls = dict(module.syscalls)
    # metadata is tiny (applied defense config and the like); generic
    # deepcopy keeps arbitrary user values safe.
    new.metadata = copy.deepcopy(module.metadata)
    return new


class InlineResult(NamedTuple):
    """Outcome of one inlining operation.

    Attributes
    ----------
    new_call_sites:
        Clones of the callee's call instructions now living in the caller,
        mapped from the *original* site id they were cloned from.
    continuation_label:
        Label of the block holding the caller's post-call instructions.
    cloned_labels:
        Labels of the callee-body blocks spliced into the caller.
    """

    new_call_sites: Dict[int, List[Instruction]]
    continuation_label: str
    cloned_labels: List[str]


def clone_function(func: Function, new_name: str) -> Function:
    """Deep-copy an entire function under a new name."""
    new = Function(
        new_name,
        num_params=func.num_params,
        attrs=set(func.attrs),
        stack_frame_size=func.stack_frame_size,
        subsystem=func.subsystem,
    )
    for block in func.blocks.values():
        new.add_block(block.clone(block.label))
    new.entry_label = func.entry_label
    return new


def inline_call(
    caller: Function,
    block_label: str,
    inst_index: int,
    callee: Function,
) -> InlineResult:
    """Splice ``callee``'s body over the call at
    ``caller.blocks[block_label].instructions[inst_index]``.

    The callee is left untouched (its blocks are cloned). Raises
    ``ValueError`` if the indicated instruction is not a direct call to
    ``callee``.
    """
    block = caller.blocks[block_label]
    call = block.instructions[inst_index]
    if call.opcode != Opcode.CALL or call.callee != callee.name:
        raise ValueError(
            f"instruction {call!r} is not a direct call to @{callee.name}"
        )
    if not callee.blocks:
        raise ValueError(f"cannot inline empty function @{callee.name}")

    serial = _next_inline_serial()
    prefix = f"inl{serial}."

    # 1. Split the caller block: everything after the call moves to a
    #    continuation block; the call itself is dropped.
    cont_label = caller.unique_label(f"{prefix}cont")
    continuation = BasicBlock(cont_label, block.instructions[inst_index + 1 :])
    del block.instructions[inst_index:]

    # 2. Clone callee blocks under renamed labels.
    label_map: Dict[str, str] = {
        old: caller.unique_label(prefix + old) for old in callee.blocks
    }
    new_call_sites: Dict[int, List[Instruction]] = {}
    cloned_labels: List[str] = []
    cloned_blocks: List[BasicBlock] = []
    for old_label, old_block in callee.blocks.items():
        new_block = BasicBlock(label_map[old_label])
        for inst in old_block.instructions:
            clone = inst.clone()
            clone.retarget(label_map)
            if clone.opcode == Opcode.RET:
                # Backward-edge elimination: ret -> jmp continuation.
                clone = Instruction(Opcode.JMP, targets=(cont_label,))
            elif clone.is_call:
                assert inst.site_id is not None
                new_call_sites.setdefault(inst.site_id, []).append(clone)
            new_block.instructions.append(clone)
        cloned_blocks.append(new_block)
        cloned_labels.append(new_block.label)

    # 3. Wire caller block -> cloned entry, register new blocks.
    assert callee.entry_label is not None
    block.instructions.append(
        Instruction(Opcode.JMP, targets=(label_map[callee.entry_label],))
    )
    for new_block in cloned_blocks:
        caller.add_block(new_block)
    caller.add_block(continuation)

    # Inlining merges the callee's frame into the caller's. Stack coloring
    # reuses most of the absorbed slots, but imperfectly — long merged call
    # chains defeat the coloring allocator, the stack-frame growth behind
    # the paper's Rule 2 rationale (Section 5.2).
    caller.stack_frame_size += max(callee.stack_frame_size // 4, 8)

    return InlineResult(new_call_sites, cont_label, cloned_labels)
