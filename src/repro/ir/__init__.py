"""Miniature LLVM-like IR: the substrate PIBE's passes operate on."""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder, build_leaf
from repro.ir.callgraph import CallEdge, CallGraph
from repro.ir.clone import InlineResult, clone_function, clone_module, inline_call
from repro.ir.fingerprint import function_fingerprint, module_fingerprint
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import FunctionPointerTable, Module
from repro.ir.parser import ParseError, dump_module, parse_instruction, parse_module
from repro.ir.printer import format_function, format_instruction, format_module
from repro.ir.types import FunctionAttr, Opcode
from repro.ir.validate import ValidationError, validate_module

__all__ = [
    "BasicBlock",
    "CallEdge",
    "CallGraph",
    "Function",
    "FunctionAttr",
    "FunctionPointerTable",
    "IRBuilder",
    "InlineResult",
    "Instruction",
    "Module",
    "Opcode",
    "ParseError",
    "ValidationError",
    "build_leaf",
    "clone_function",
    "clone_module",
    "dump_module",
    "format_function",
    "format_instruction",
    "format_module",
    "function_fingerprint",
    "inline_call",
    "module_fingerprint",
    "parse_instruction",
    "parse_module",
    "validate_module",
]
