"""IR modules: the whole-program unit PIBE's link-time passes operate on.

A module holds every function plus the function-pointer tables that give
rise to the kernel's indirect calls (``file_operations``-style op vectors)
and the syscall table that names userspace-reachable entry points.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode


class FunctionPointerTable:
    """A named table of function pointers (e.g. a ``file_operations``).

    Indirect call sites reference a table by name; the interpreter and the
    profile lifter use the table to resolve/validate indirect targets.
    """

    __slots__ = ("name", "entries")

    def __init__(self, name: str, entries: Optional[List[str]] = None) -> None:
        self.name = name
        self.entries: List[str] = list(entries) if entries else []

    def add(self, function_name: str) -> None:
        if function_name not in self.entries:
            self.entries.append(function_name)

    def __contains__(self, function_name: str) -> bool:
        return function_name in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"<FPTable {self.name} [{len(self.entries)} entries]>"


class Module:
    """A linked whole-program IR module."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.fptr_tables: Dict[str, FunctionPointerTable] = {}
        #: syscall name -> handler function name
        self.syscalls: Dict[str, str] = {}
        #: free-form module metadata (e.g. applied hardening configuration)
        self.metadata: Dict[str, object] = {}
        #: transformation counter; derived artifacts (the compiled
        #: execution engine's per-module program cache) are keyed on it.
        #: Bumped by the pass manager after every pass — bump manually
        #: after mutating IR by hand.
        self.version = 0
        #: names of functions still shared with a copy-on-write source
        #: module (see ``clone_module(cow=True)``); empty for modules that
        #: own all their functions. Shared functions are safe to read but
        #: must be materialized via :meth:`mutable` before any mutation.
        self._cow_shared: set = set()

    # -- copy-on-write ---------------------------------------------------------

    def mutable(self, name: str) -> Function:
        """The function ``name``, guaranteed private to this module.

        On a copy-on-write clone (``clone_module(cow=True)``) the first
        ``mutable`` call for a function replaces the shared object with a
        private deep copy (site ids preserved) and returns it; afterwards
        — and on ordinary modules always — this is just ``functions[name]``.
        Every pass that mutates a function goes through this accessor, so
        the COW source (a cached optimized-prefix module, the baseline)
        can never be corrupted by a variant build.
        """
        func = self.functions[name]
        if name in self._cow_shared:
            from repro.ir.clone import clone_function_exact

            func = clone_function_exact(func)
            self.functions[name] = func
            self._cow_shared.discard(name)
        return func

    def mutable_shell(self, name: str) -> Function:
        """Like :meth:`mutable`, but only the function *skeleton* is
        copied — its :class:`BasicBlock` objects (and their instructions)
        stay shared with the COW source.

        For passes that stamp attributes onto a few instructions and do
        their own block-level copy-on-write (the hardening pass): the
        caller owns ``func.blocks`` (may rebind labels to fresh blocks)
        but MUST NOT mutate the shared block/instruction objects
        themselves. On an already-private function this is just
        ``functions[name]``, same as :meth:`mutable`.
        """
        func = self.functions[name]
        if name in self._cow_shared:
            from repro.ir.clone import clone_function_shell

            func = clone_function_shell(func)
            self.functions[name] = func
            self._cow_shared.discard(name)
        return func

    def is_cow_shared(self, name: str) -> bool:
        """Whether ``name`` is still shared with this clone's COW source."""
        return name in self._cow_shared

    def cow_shared_count(self) -> int:
        """Functions still shared with the COW source (0 on owned modules)."""
        return len(self._cow_shared)

    def bump_version(self) -> int:
        """Mark the module as transformed; invalidates compiled programs."""
        self.version += 1
        return self.version

    # -- functions -----------------------------------------------------------

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def get(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r} in module") from None

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return len(self.functions)

    # -- tables / entry points -------------------------------------------------

    def add_fptr_table(self, table: FunctionPointerTable) -> FunctionPointerTable:
        if table.name in self.fptr_tables:
            raise ValueError(f"duplicate fptr table {table.name!r}")
        self.fptr_tables[table.name] = table
        return table

    def register_syscall(self, syscall: str, handler: str) -> None:
        if handler not in self.functions:
            raise KeyError(f"syscall handler {handler!r} not in module")
        self.syscalls[syscall] = handler

    def syscall_handler(self, syscall: str) -> Function:
        return self.get(self.syscalls[syscall])

    # -- whole-module queries ----------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for func in self.functions.values():
            yield from func.instructions()

    def indirect_call_sites(self) -> Iterator[Instruction]:
        for inst in self.instructions():
            if inst.opcode == Opcode.ICALL:
                yield inst

    def return_sites(self) -> Iterator[Instruction]:
        for inst in self.instructions():
            if inst.opcode == Opcode.RET:
                yield inst

    def indirect_jump_sites(self) -> Iterator[Instruction]:
        for inst in self.instructions():
            if inst.opcode == Opcode.IJUMP:
                yield inst

    def address_taken(self) -> frozenset:
        """Functions whose address escapes into a pointer table — the
        static universe of feasible indirect-call targets (the analyzer's
        and the generator census's address-taken set)."""
        return frozenset(
            entry
            for table in self.fptr_tables.values()
            for entry in table.entries
        )

    def size(self) -> int:
        """Total static instruction count across all functions."""
        return sum(f.size() for f in self.functions.values())

    def size_bytes(self) -> int:
        """Estimated image text size in bytes."""
        from repro.ir.types import INSTRUCTION_SIZE_BYTES

        return self.size() * INSTRUCTION_SIZE_BYTES

    def find_call_site(self, site_id: int) -> Optional[Instruction]:
        """Linear scan for a call site by id (test/debug helper)."""
        for inst in self.instructions():
            if inst.site_id == site_id:
                return inst
        return None

    def __repr__(self) -> str:
        return (
            f"<Module {self.name} functions={len(self.functions)} "
            f"size={self.size()}>"
        )
