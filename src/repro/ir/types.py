"""Core IR type definitions: opcodes, attribute names, and constants.

The IR is a deliberately small, LLVM-flavoured intermediate representation.
It models exactly the features PIBE's algorithms care about: call sites
(direct and indirect), returns, conditional/unconditional/multiway branches,
memory operations, and generic computation. Instructions carry free-form
attributes used by the behaviour models (branch probabilities, indirect
target distributions) and by the hardening passes (defense tags).
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """Instruction opcodes understood by the interpreter and timing model."""

    #: Generic arithmetic/logic computation (one cycle-ish unit of work).
    ARITH = "arith"
    #: Comparison feeding a conditional branch or promoted-call guard.
    CMP = "cmp"
    #: Memory load.
    LOAD = "load"
    #: Memory store.
    STORE = "store"
    #: Direct call; ``callee`` names the target function.
    CALL = "call"
    #: Indirect call through a register/memory function pointer.
    ICALL = "icall"
    #: Unconditional intra-function jump; successor in ``targets[0]``.
    JMP = "jmp"
    #: Conditional branch; ``targets = (taken, fallthrough)``.
    BR = "br"
    #: Multiway branch (C ``switch``); ``targets`` lists case labels.
    SWITCH = "switch"
    #: Indirect jump (lowered jump table or indirect tail call).
    IJUMP = "ijump"
    #: Function return.
    RET = "ret"
    #: Serializing load fence (LFENCE).
    FENCE = "fence"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset(
    {Opcode.JMP, Opcode.BR, Opcode.SWITCH, Opcode.IJUMP, Opcode.RET}
)

#: Opcodes that transfer control to another function.
CALLS = frozenset({Opcode.CALL, Opcode.ICALL})

#: Opcodes an attacker can steer when unprotected (indirect branches).
INDIRECT_BRANCHES = frozenset({Opcode.ICALL, Opcode.IJUMP, Opcode.RET})


class FunctionAttr(enum.Enum):
    """Function-level attributes mirroring the LLVM/kernel attributes that
    gate PIBE's transformations (Section 8.6, Table 9 "other" category)."""

    #: ``__attribute__((noinline))`` — never an inlining candidate.
    NOINLINE = "noinline"
    #: ``optnone`` — the whole function is skipped by optimization passes.
    OPTNONE = "optnone"
    #: Body is (modelled) inline assembly; cannot be auto-instrumented
    #: (paper Section 3 / Table 11 paravirt hypercalls).
    INLINE_ASM = "inline_asm"
    #: Only executes during early boot; exempt from transient hardening
    #: (paper Section 8.6).
    BOOT_ONLY = "boot_only"
    #: Kernel entry point reachable from userspace (syscall handler).
    SYSCALL_ENTRY = "syscall_entry"
    #: Always-inline hint (treated as a strong inlining hint).
    ALWAYS_INLINE = "always_inline"


# Instruction attribute keys (kept as plain strings on ``Instruction.attrs``).

#: ``dict[str, int]`` of callee name -> weight, ground-truth behaviour of an
#: indirect call site (used by the interpreter to pick targets).
ATTR_TARGETS = "targets"
#: Probability a conditional branch is taken (float in [0, 1]).
ATTR_P_TAKEN = "p_taken"
#: Deterministic loop trip count for a back-edge conditional branch.
ATTR_TRIP = "trip"
#: Marks an ICALL as C++-style virtual dispatch (extra vtable load).
ATTR_VCALL = "vcall"
#: Name of the function-pointer table an ICALL reads from.
ATTR_FPTR_TABLE = "fptr_table"
#: Weights for SWITCH case selection.
ATTR_CASE_WEIGHTS = "case_weights"
#: Value-profile metadata attached by profile lifting:
#: list of (target_name, count) tuples, hottest first (paper Section 7).
ATTR_VALUE_PROFILE = "value_profile"
#: Execution count attached to a direct call site by profile lifting.
ATTR_EDGE_COUNT = "edge_count"
#: Tag recording which defense lowering protects this branch.
ATTR_DEFENSE = "defense"
#: Marks a branch emitted by an inline-assembly macro: the compiler cannot
#: rewrite it (paper Section 3), so hardening skips it. Unlike
#: ``FunctionAttr.INLINE_ASM`` (whole opaque asm functions), an asm *site*
#: lives inside a normal function — and is duplicated when its containing
#: code is inlined, which is how the paper's vulnerable-icall count grows
#: with the optimization budget (Table 11).
ATTR_ASM_SITE = "asm_site"
#: Marks a direct call produced by indirect call promotion.
ATTR_PROMOTED = "promoted"
#: Provenance: site id of the original instruction this was cloned from.
ATTR_CLONED_FROM = "cloned_from"
#: Provenance: site id of the indirect call a promotion artifact belongs
#: to. ICP stamps it on every promoted direct call and on the residual
#: fallback icall, so the static analyzer can reassociate a Listing-2
#: guard chain with its origin site after cloning and inlining.
ATTR_ICP_SITE = "icp_site"

#: Module metadata key: list of ``{"site", "target", "count"}`` records,
#: one per *original* promoted direct call consumed by an inliner. The
#: flow-conservation analysis uses these to account for profile weight
#: that no longer appears as a call instruction.
METADATA_INLINED_PROMOTED = "inlined_promoted"


#: Approximate encoded size, in bytes, of one IR instruction once lowered to
#: x86-64. Matches the paper's observation that LLVM's per-instruction
#: InlineCost of 5 approximates average instruction size (Section 5.2).
INSTRUCTION_SIZE_BYTES = 5
