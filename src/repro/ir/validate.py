"""Module verifier.

Catches the structural mistakes transformation passes can introduce:
dangling successor labels, unterminated blocks, calls to missing functions,
indirect sites without target metadata, unreachable entry blocks.

The actual checks live in the static-analysis rule registry
(:mod:`repro.static.rules.structural`, rule ``structural``); this module
keeps the original list-of-strings / raising interface on top of it so
pass-manager validation and existing callers are unaffected.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.module import Module


class ValidationError(Exception):
    """A module failed verification; ``errors`` lists every finding."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__(
            f"{len(errors)} validation error(s):\n" + "\n".join(errors)
        )
        self.errors = errors


def validate_function(func: Function, module: Module) -> List[str]:
    """Collect (not raise) every structural error in one function."""
    # Imported lazily: repro.static imports repro.ir.
    from repro.static.rules.structural import STRUCTURAL

    return [
        d.legacy_message()
        for d in STRUCTURAL.function_diagnostics(func, module)
    ]


def validate_module(module: Module) -> None:
    """Raise :class:`ValidationError` if the module is malformed."""
    from repro.static.rules.structural import STRUCTURAL

    errors: List[str] = []
    for func in module:
        errors.extend(
            d.legacy_message()
            for d in STRUCTURAL.function_diagnostics(func, module)
        )
    errors.extend(
        d.legacy_message() for d in STRUCTURAL.module_diagnostics(module)
    )
    if errors:
        raise ValidationError(errors)
