"""Module verifier.

Catches the structural mistakes transformation passes can introduce:
dangling successor labels, unterminated blocks, calls to missing functions,
indirect sites without target metadata, unreachable entry blocks.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import ATTR_TARGETS, Opcode


class ValidationError(Exception):
    """A module failed verification; ``errors`` lists every finding."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__(
            f"{len(errors)} validation error(s):\n" + "\n".join(errors)
        )
        self.errors = errors


def validate_function(func: Function, module: Module) -> List[str]:
    """Collect (not raise) every structural error in one function."""
    errors: List[str] = []
    where = f"@{func.name}"
    if not func.blocks:
        return [f"{where}: has no blocks"]

    for block in func.blocks.values():
        loc = f"{where}:{block.label}"
        term = block.terminator
        if term is None:
            errors.append(f"{loc}: block is not terminated")
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator and i != len(block.instructions) - 1:
                errors.append(f"{loc}: terminator mid-block at index {i}")
            if inst.opcode == Opcode.CALL:
                if inst.callee is None:
                    errors.append(f"{loc}: direct call without callee")
                elif inst.callee not in module:
                    errors.append(
                        f"{loc}: call to undefined @{inst.callee}"
                    )
            if inst.opcode == Opcode.ICALL:
                targets = inst.attrs.get(ATTR_TARGETS)
                if not targets:
                    errors.append(f"{loc}: icall without target metadata")
                else:
                    for t in targets:
                        if t not in module:
                            errors.append(
                                f"{loc}: icall may-target undefined @{t}"
                            )
            for label in inst.targets:
                if label not in func.blocks:
                    errors.append(
                        f"{loc}: branch to unknown block {label!r}"
                    )
    return errors


def validate_module(module: Module) -> None:
    """Raise :class:`ValidationError` if the module is malformed."""
    errors: List[str] = []
    for func in module:
        errors.extend(validate_function(func, module))
    for table in module.fptr_tables.values():
        for entry in table.entries:
            if entry not in module:
                errors.append(
                    f"fptr table {table.name!r}: undefined entry @{entry}"
                )
    for syscall, handler in module.syscalls.items():
        if handler not in module:
            errors.append(
                f"syscall {syscall!r}: undefined handler @{handler}"
            )
    if errors:
        raise ValidationError(errors)
