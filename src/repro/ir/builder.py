"""Fluent construction helper for IR functions.

The builder keeps an insertion point (a block) and offers one method per
opcode, so generator code reads like a linear assembly listing::

    b = IRBuilder(func)
    b.arith(3)
    b.load()
    b.call("vfs_read", num_args=3)
    b.ret()
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import (
    ATTR_ASM_SITE,
    ATTR_CASE_WEIGHTS,
    ATTR_FPTR_TABLE,
    ATTR_P_TAKEN,
    ATTR_TARGETS,
    ATTR_TRIP,
    ATTR_VCALL,
    Opcode,
)


class IRBuilder:
    """Appends instructions at a movable insertion point."""

    def __init__(self, func: Function, label: str = "entry") -> None:
        self.func = func
        if label in func.blocks:
            self.block: BasicBlock = func.blocks[label]
        else:
            self.block = func.new_block(label)

    # -- insertion point management ---------------------------------------

    def new_block(self, label: str) -> BasicBlock:
        """Create a new block (without moving the insertion point)."""
        return self.func.new_block(self.func.unique_label(label))

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def at(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    # -- straight-line instructions -----------------------------------------

    def _emit(self, inst: Instruction) -> Instruction:
        return self.block.append(inst)

    def arith(self, count: int = 1) -> None:
        """Emit ``count`` generic computation instructions."""
        for _ in range(count):
            self._emit(Instruction(Opcode.ARITH))

    def cmp(self) -> Instruction:
        return self._emit(Instruction(Opcode.CMP))

    def load(self, count: int = 1) -> None:
        for _ in range(count):
            self._emit(Instruction(Opcode.LOAD))

    def store(self, count: int = 1) -> None:
        for _ in range(count):
            self._emit(Instruction(Opcode.STORE))

    def fence(self) -> Instruction:
        return self._emit(Instruction(Opcode.FENCE))

    def call(self, callee: str, num_args: int = 0) -> Instruction:
        return self._emit(
            Instruction(Opcode.CALL, callee=callee, num_args=num_args)
        )

    def icall(
        self,
        targets: Dict[str, int],
        num_args: int = 0,
        fptr_table: Optional[str] = None,
        vcall: bool = False,
        asm: bool = False,
    ) -> Instruction:
        """Emit an indirect call whose ground-truth target distribution is
        ``targets`` (callee name -> relative weight). ``asm`` marks the
        site as inline assembly (not hardenable)."""
        attrs: Dict[str, Any] = {ATTR_TARGETS: dict(targets)}
        if fptr_table is not None:
            attrs[ATTR_FPTR_TABLE] = fptr_table
        if vcall:
            attrs[ATTR_VCALL] = True
        if asm:
            attrs[ATTR_ASM_SITE] = True
        return self._emit(
            Instruction(Opcode.ICALL, num_args=num_args, attrs=attrs)
        )

    # -- terminators --------------------------------------------------------

    def jmp(self, target: str) -> Instruction:
        return self._emit(Instruction(Opcode.JMP, targets=(target,)))

    def br(
        self,
        taken: str,
        fallthrough: str,
        p_taken: float = 0.5,
        trip: Optional[int] = None,
    ) -> Instruction:
        """Conditional branch. ``trip`` makes it a deterministic loop
        back-edge executing the taken path ``trip`` times per entry."""
        attrs: Dict[str, Any] = {ATTR_P_TAKEN: p_taken}
        if trip is not None:
            attrs[ATTR_TRIP] = trip
        return self._emit(
            Instruction(Opcode.BR, targets=(taken, fallthrough), attrs=attrs)
        )

    def switch(
        self, cases: Sequence[str], weights: Optional[Sequence[float]] = None
    ) -> Instruction:
        attrs: Dict[str, Any] = {}
        if weights is not None:
            if len(weights) != len(cases):
                raise ValueError("switch weights must match case count")
            attrs[ATTR_CASE_WEIGHTS] = list(weights)
        return self._emit(
            Instruction(Opcode.SWITCH, targets=tuple(cases), attrs=attrs)
        )

    def ijump(self) -> Instruction:
        return self._emit(Instruction(Opcode.IJUMP))

    def ret(self) -> Instruction:
        return self._emit(Instruction(Opcode.RET))


def build_leaf(
    name: str,
    work: int = 4,
    loads: int = 1,
    stores: int = 1,
    num_params: int = 1,
    subsystem: str = "",
    attrs=None,
) -> Function:
    """Construct a simple leaf function: compute, touch memory, return."""
    func = Function(
        name,
        num_params=num_params,
        subsystem=subsystem,
        attrs=set(attrs) if attrs else None,
    )
    b = IRBuilder(func)
    b.arith(work)
    b.load(loads)
    b.store(stores)
    b.ret()
    return func
