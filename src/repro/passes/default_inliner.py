"""LLVM-style bottom-up PGO inliner — the baseline of Section 8.4.

The default inliner walks the call graph bottom-up (callees before callers)
and inlines a site whenever the callee's InlineCost fits a size threshold,
bumped for profile-hot sites. Its inlining order is *irrespective of
profiling weight*: within a caller, sites are visited in program order, so
earlier cold inlining can consume the caller's growth budget and inhibit
more beneficial hot inlining — the instability PIBE's hottest-first queue
avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.clone import inline_call, record_inlined_promotion
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_EDGE_COUNT,
    METADATA_INLINED_PROMOTED,
    FunctionAttr,
    Opcode,
)
from repro.ir.callgraph import CallGraph
from repro.passes.inline_cost import InlineCostCache
from repro.passes.manager import ModulePass
from repro.profiling.profile_data import EdgeProfile


@dataclass
class DefaultInlineReport:
    inlined_sites: int = 0
    inlined_weight: int = 0
    returns_elided_sites: int = 0
    visited_sites: int = 0


class DefaultInliner(ModulePass):
    """Bottom-up size-threshold inliner.

    Parameters
    ----------
    profile:
        Used only to classify sites as hot (count > 0) — mirroring LLVM's
        hot-callsite threshold bump, not PIBE's weight ordering.
    cold_threshold:
        InlineCost limit for unprofiled sites (LLVM default inline
        threshold neighbourhood).
    hot_threshold:
        InlineCost limit for profile-hot sites (LLVM's hot threshold,
        3,000).
    caller_growth_limit:
        Stop growing a caller past this InlineCost.
    """

    name = "default-inliner"

    def __init__(
        self,
        profile: Optional[EdgeProfile] = None,
        cold_threshold: int = 45,
        hot_threshold: int = 90,
        caller_growth_limit: int = 2_400,
        costs: Optional[InlineCostCache] = None,
    ) -> None:
        # LLVM's default inline threshold is 225 (scaled ~5x down to 45 for
        # the synthetic kernel's smaller functions); the paper notes the
        # default inliner's decisions are made "solely based on size
        # complexity and inline hints", so the profile-hot bonus is modest.
        self.profile = profile
        self.cold_threshold = cold_threshold
        self.hot_threshold = hot_threshold
        self.caller_growth_limit = caller_growth_limit
        self.costs = costs if costs is not None else InlineCostCache()

    def run(self, module: Module) -> DefaultInlineReport:
        report = DefaultInlineReport()
        module.metadata.setdefault(METADATA_INLINED_PROMOTED, [])
        costs = self.costs
        order = CallGraph(module).bottom_up_order()

        for caller_name in order:
            caller = module.functions.get(caller_name)
            if caller is None or caller.has_attr(FunctionAttr.OPTNONE):
                continue
            # Visit sites in program order (repeatedly, since inlining
            # introduces new sites mid-block).
            progress = True
            while progress:
                progress = False
                for block in list(caller.blocks.values()):
                    for idx, inst in enumerate(block.instructions):
                        if inst.opcode != Opcode.CALL:
                            continue
                        callee = module.functions.get(inst.callee or "")
                        if (
                            callee is None
                            or callee.name == caller.name
                            or not callee.is_inlinable
                            or callee.is_recursive()
                        ):
                            continue
                        report.visited_sites += 1
                        weight = inst.attrs.get(ATTR_EDGE_COUNT, 0)
                        threshold = (
                            self.hot_threshold if weight > 0 else self.cold_threshold
                        )
                        if costs.cost(callee) > threshold:
                            continue
                        if costs.cost(caller) > self.caller_growth_limit:
                            continue
                        # Materialize on copy-on-write modules; the exact
                        # clone keeps block labels and indices valid.
                        caller = module.mutable(caller.name)
                        inst = caller.blocks[block.label].instructions[idx]
                        record_inlined_promotion(module, inst)
                        inline_call(caller, block.label, idx, callee)
                        costs.invalidate(caller.name)
                        report.inlined_sites += 1
                        report.inlined_weight += weight
                        report.returns_elided_sites += len(callee.returns())
                        progress = True
                        break
                    if progress:
                        break
        return report
