"""LLVM-style bottom-up PGO inliner — the baseline of Section 8.4.

The default inliner walks the call graph bottom-up (callees before callers)
and inlines a site whenever the callee's InlineCost fits a size threshold,
bumped for profile-hot sites. Its inlining order is *irrespective of
profiling weight*: within a caller, sites are visited in program order, so
earlier cold inlining can consume the caller's growth budget and inhibit
more beneficial hot inlining — the instability PIBE's hottest-first queue
avoids.

Like :class:`repro.passes.inliner.PibeInliner`, the policy is written
once against an abstract world: :meth:`DefaultInliner.run` drives it over
the real module (the classic single-phase behaviour) and
:meth:`DefaultInliner.plan` drives it over a
:class:`~repro.passes.decisions.VirtualSpace`, emitting an ordered step
trace replayed by
:func:`repro.passes.inliner.apply_inline_steps`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Optional

from repro.ir.clone import inline_call, record_inlined_promotion
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_EDGE_COUNT,
    METADATA_INLINED_PROMOTED,
    FunctionAttr,
    Opcode,
)
from repro.ir.callgraph import CallGraph
from repro.passes.decisions import (
    InlinePlan,
    InlineStep,
    VirtualSite,
    VirtualSpace,
)
from repro.passes.inline_cost import InlineCostCache
from repro.passes.manager import ModulePass
from repro.profiling.profile_data import EdgeProfile


@dataclass
class DefaultInlineReport:
    inlined_sites: int = 0
    inlined_weight: int = 0
    returns_elided_sites: int = 0
    visited_sites: int = 0


class DefaultInliner(ModulePass):
    """Bottom-up size-threshold inliner.

    Parameters
    ----------
    profile:
        Used only to classify sites as hot (count > 0) — mirroring LLVM's
        hot-callsite threshold bump, not PIBE's weight ordering.
    cold_threshold:
        InlineCost limit for unprofiled sites (LLVM default inline
        threshold neighbourhood).
    hot_threshold:
        InlineCost limit for profile-hot sites (LLVM's hot threshold,
        3,000).
    caller_growth_limit:
        Stop growing a caller past this InlineCost.
    """

    name = "default-inliner"

    def __init__(
        self,
        profile: Optional[EdgeProfile] = None,
        cold_threshold: int = 45,
        hot_threshold: int = 90,
        caller_growth_limit: int = 2_400,
        costs: Optional[InlineCostCache] = None,
    ) -> None:
        # LLVM's default inline threshold is 225 (scaled ~5x down to 45 for
        # the synthetic kernel's smaller functions); the paper notes the
        # default inliner's decisions are made "solely based on size
        # complexity and inline hints", so the profile-hot bonus is modest.
        self.profile = profile
        self.cold_threshold = cold_threshold
        self.hot_threshold = hot_threshold
        self.caller_growth_limit = caller_growth_limit
        self.costs = costs if costs is not None else InlineCostCache()

    def run(self, module: Module) -> DefaultInlineReport:
        order = CallGraph(module).bottom_up_order()
        return self._drive(_RealDefaultWorld(module, self.costs), order)

    def plan(self, module: Module, space: VirtualSpace) -> InlinePlan:
        """Decision phase against ``space``; ``module`` (the real pre-inline
        module) only supplies the bottom-up order, exactly as ``run``
        computes it at pass entry."""
        order = CallGraph(module).bottom_up_order()
        world = _VirtualDefaultWorld(space)
        report = self._drive(world, order)
        return InlinePlan(steps=world.steps, report=report)

    def apply_plan(
        self, module: Module, plan: InlinePlan
    ) -> DefaultInlineReport:
        from repro.passes.inliner import apply_inline_steps

        apply_inline_steps(module, plan.steps)
        return plan.report

    def _drive(
        self, world: "_DefaultWorld", order: List[str]
    ) -> DefaultInlineReport:
        report = DefaultInlineReport()
        world.prepare()

        for caller_name in order:
            if not world.has_function(caller_name) or world.is_optnone(
                caller_name
            ):
                continue
            # Visit sites in program order (repeatedly, since inlining
            # introduces new sites mid-block).
            progress = True
            while progress:
                progress = False
                for site in world.scan_calls(caller_name):
                    callee_name = world.site_callee(site) or ""
                    if (
                        not world.has_function(callee_name)
                        or callee_name == caller_name
                        or not world.is_inlinable(callee_name)
                        or world.is_recursive(callee_name)
                    ):
                        continue
                    report.visited_sites += 1
                    weight = world.site_weight(site)
                    threshold = (
                        self.hot_threshold if weight > 0 else self.cold_threshold
                    )
                    if world.cost(callee_name) > threshold:
                        continue
                    if world.cost(caller_name) > self.caller_growth_limit:
                        continue
                    world.splice(caller_name, site, callee_name)
                    report.inlined_sites += 1
                    report.inlined_weight += weight
                    report.returns_elided_sites += world.returns_count(
                        callee_name
                    )
                    progress = True
                    break
        return report


class _DefaultSite(NamedTuple):
    block_label: str
    idx: int
    inst: Instruction


class _DefaultWorld:
    """Interface both default-inliner worlds implement (documentation)."""


class _RealDefaultWorld(_DefaultWorld):
    def __init__(self, module: Module, costs: InlineCostCache) -> None:
        self.module = module
        self.costs = costs

    def prepare(self) -> None:
        self.module.metadata.setdefault(METADATA_INLINED_PROMOTED, [])

    def has_function(self, name: str) -> bool:
        return name in self.module.functions

    def is_optnone(self, name: str) -> bool:
        return self.module.functions[name].has_attr(FunctionAttr.OPTNONE)

    def is_inlinable(self, name: str) -> bool:
        return self.module.functions[name].is_inlinable

    def is_recursive(self, name: str) -> bool:
        return self.module.functions[name].is_recursive()

    def returns_count(self, name: str) -> int:
        return len(self.module.functions[name].returns())

    def cost(self, name: str) -> int:
        return self.costs.cost(self.module.functions[name])

    def scan_calls(self, caller_name: str) -> Iterator[_DefaultSite]:
        caller = self.module.functions[caller_name]
        for block in list(caller.blocks.values()):
            for idx, inst in enumerate(block.instructions):
                if inst.opcode != Opcode.CALL:
                    continue
                yield _DefaultSite(block.label, idx, inst)

    def site_callee(self, site: _DefaultSite) -> Optional[str]:
        return site.inst.callee

    def site_weight(self, site: _DefaultSite) -> int:
        return site.inst.attrs.get(ATTR_EDGE_COUNT, 0)

    def splice(
        self, caller_name: str, site: _DefaultSite, callee_name: str
    ) -> None:
        callee = self.module.functions[callee_name]
        # Materialize on copy-on-write modules; the exact clone keeps
        # block labels and indices valid.
        caller = self.module.mutable(caller_name)
        inst = caller.blocks[site.block_label].instructions[site.idx]
        record_inlined_promotion(self.module, inst)
        inline_call(caller, site.block_label, site.idx, callee)
        self.costs.invalidate(caller_name)


class _VirtualDefaultWorld(_DefaultWorld):
    def __init__(self, space: VirtualSpace) -> None:
        self.space = space
        self.steps: List[InlineStep] = []

    def prepare(self) -> None:
        pass  # provenance metadata is stamped by apply_inline_steps

    def has_function(self, name: str) -> bool:
        return self.space.has_function(name)

    def is_optnone(self, name: str) -> bool:
        return self.space.seed(name).is_optnone

    def is_inlinable(self, name: str) -> bool:
        return self.space.seed(name).is_inlinable

    def is_recursive(self, name: str) -> bool:
        return self.space.is_recursive(name)

    def returns_count(self, name: str) -> int:
        return self.space.seed(name).returns_count

    def cost(self, name: str) -> int:
        return self.space.cost(name)

    def scan_calls(self, caller_name: str) -> Iterator[VirtualSite]:
        vf = self.space.function(caller_name)
        if vf is None:
            return
        for block in list(vf.blocks):
            for site in block:
                if site.opcode != Opcode.CALL:
                    continue
                yield site

    def site_callee(self, site: VirtualSite) -> Optional[str]:
        return site.callee

    def site_weight(self, site: VirtualSite) -> int:
        return site.weight

    def splice(
        self, caller_name: str, site: VirtualSite, callee_name: str
    ) -> None:
        step = InlineStep(
            caller=caller_name,
            vid=site.vid,
            callee=callee_name,
            weight=site.weight,
        )
        _, pairs = self.space.splice(caller_name, site, callee_name)
        step.clones = pairs
        self.steps.append(step)
