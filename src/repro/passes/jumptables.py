"""Jump-table lowering (paper Section 5.1).

Compilers lower multiway branches (``switch``) either to a bounds-checked
indirect jump through a jump table — fast, but transiently hijackable since
speculation can bypass the bounds check — or to a compare-and-branch chain.
When retpolines or LVI defenses are enabled, LLVM disables jump-table
generation; PIBE adopts the same behaviour (as does JumpSwitches).

``LowerSwitches(allow_jump_tables=True)`` produces IJUMPs (the vanilla
kernel's 1432 vulnerable indirect jumps); ``False`` produces cmp chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_CASE_WEIGHTS,
    ATTR_P_TAKEN,
    FunctionAttr,
    Opcode,
)
from repro.passes.manager import ModulePass

#: Below this many cases a compiler emits a cmp chain anyway.
JUMP_TABLE_MIN_CASES = 4


@dataclass
class SwitchLoweringReport:
    switches_seen: int = 0
    jump_tables_emitted: int = 0
    cmp_chains_emitted: int = 0


class LowerSwitches(ModulePass):
    """Lower every SWITCH to a jump table (IJUMP) or a cmp chain."""

    name = "lower-switches"

    def __init__(self, allow_jump_tables: bool) -> None:
        self.allow_jump_tables = allow_jump_tables

    def run(self, module: Module) -> SwitchLoweringReport:
        report = SwitchLoweringReport()
        for name in list(module.functions):
            func = module.functions[name]
            # Terminator-only prescan keeps copy-on-write clones shared
            # for the (vast majority of) functions without a switch.
            if any(
                block.terminator is not None
                and block.terminator.opcode == Opcode.SWITCH
                for block in func.blocks.values()
            ):
                self._lower_function(module.mutable(name), report)
        return report

    def _lower_function(
        self, func: Function, report: SwitchLoweringReport
    ) -> None:
        # Snapshot: lowering adds blocks.
        for block in list(func.blocks.values()):
            term = block.terminator
            if term is None or term.opcode != Opcode.SWITCH:
                continue
            report.switches_seen += 1
            use_table = (
                self.allow_jump_tables
                and len(term.targets) >= JUMP_TABLE_MIN_CASES
                and not func.has_attr(FunctionAttr.INLINE_ASM)
            )
            if use_table:
                self._to_jump_table(block, term)
                report.jump_tables_emitted += 1
            else:
                self._to_cmp_chain(func, block, term)
                report.cmp_chains_emitted += 1

    @staticmethod
    def _to_jump_table(block: BasicBlock, term: Instruction) -> None:
        """Bounds check + indirect jump through the table."""
        weights = term.attrs.get(ATTR_CASE_WEIGHTS)
        lowered = Instruction(
            Opcode.IJUMP,
            targets=term.targets,
            attrs={ATTR_CASE_WEIGHTS: weights} if weights else {},
        )
        # cmp models the bounds check; load models the table fetch.
        block.instructions[-1:] = [
            Instruction(Opcode.CMP),
            Instruction(Opcode.LOAD),
            lowered,
        ]

    @staticmethod
    def _to_cmp_chain(
        func: Function, block: BasicBlock, term: Instruction
    ) -> None:
        """cmp/br ladder over the cases (last case is the fallthrough)."""
        cases: List[str] = list(term.targets)
        weights = term.attrs.get(ATTR_CASE_WEIGHTS) or [1.0] * len(cases)
        del block.instructions[-1]
        if len(cases) == 1:
            block.instructions.append(
                Instruction(Opcode.JMP, targets=(cases[0],))
            )
            return
        remaining = float(sum(weights))
        current = block
        for i, case in enumerate(cases[:-1]):
            p = weights[i] / remaining if remaining > 0 else 0.0
            remaining -= weights[i]
            is_last_guard = i == len(cases) - 2
            if is_last_guard:
                next_label = cases[-1]
            else:
                nxt = BasicBlock(func.unique_label(f"{block.label}.sw{i}"))
                func.add_block(nxt)
                next_label = nxt.label
            current.instructions.append(Instruction(Opcode.CMP))
            current.instructions.append(
                Instruction(
                    Opcode.BR,
                    targets=(case, next_label),
                    attrs={ATTR_P_TAKEN: min(max(p, 0.0), 1.0)},
                )
            )
            if not is_last_guard:
                current = func.blocks[next_label]
