"""PIBE's profile-guided greedy inliner (paper Section 5.2).

Inlining here is a *security* transformation: every inlined call removes a
backward edge (the callee's return) from the dynamic path, which would
otherwise need costly transient-execution hardening. The algorithm:

Rule 1 — inline only hot call sites: a budget selects the hottest call
sites covering the requested percentage of cumulative execution count;
sites are processed hottest-first from a priority queue so cold inlining
can never block hot inlining.

Rule 2 — avoid excessive complexity in the caller: skip a site when the
caller's InlineCost exceeds a threshold (12,000), preventing poor stack
frame utilization from long merged call chains.

Rule 3 — skip callees whose own complexity exceeds a lower threshold
(3,000), so one big callee cannot deplete the caller's budget that many
small ones could use (Figure 1).

After inlining a call with execution count ``ε`` into a caller, the
callee's own call sites appear in the caller; each inherits a count equal
to its count in the callee scaled by ``ε / invocations(callee)`` —
Scheifler-style constant-ratio inheritance — and re-enters the queue if it
still qualifies as hot.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.clone import inline_call, record_inlined_promotion
from repro.ir.types import (
    ATTR_EDGE_COUNT,
    ATTR_VALUE_PROFILE,
    METADATA_INLINED_PROMOTED,
    FunctionAttr,
    Opcode,
)
from repro.passes.decisions import (
    InlinePlan,
    InlineStep,
    VirtualSite,
    VirtualSpace,
)
from repro.passes.inline_cost import (
    DEFAULT_CALLEE_THRESHOLD,
    DEFAULT_CALLER_THRESHOLD,
    STANDARD_INSTRUCTION_COST,
    InlineCostCache,
    instruction_cost,
)
from repro.passes.manager import ModulePass
from repro.profiling.profile_data import EdgeProfile


@dataclass
class InlineReport:
    """Inlining statistics backing Tables 8, 9 and 10."""

    budget: float
    #: total profiled direct-call weight in the module (post-ICP)
    total_profiled_weight: int = 0
    #: number of profiled direct call sites
    total_profiled_sites: int = 0
    #: weight of the initial hot candidate set (Table 9 "Ovr.")
    candidate_weight: int = 0
    #: initial hot candidate sites (Table 10 "Candidates")
    candidate_sites: int = 0
    inlined_sites: int = 0
    inlined_weight: int = 0
    #: static return instructions elided (became jumps) — Table 8
    returns_elided_sites: int = 0
    #: dynamic return weight elided — Table 8
    returns_elided_weight: int = 0
    blocked_rule2_weight: int = 0
    blocked_rule2_sites: int = 0
    blocked_rule3_weight: int = 0
    blocked_rule3_sites: int = 0
    blocked_other_weight: int = 0
    blocked_other_sites: int = 0
    #: blocked sites per caller subsystem (Table 9 discussion)
    blocked_by_subsystem: Dict[str, int] = field(default_factory=dict)

    @property
    def elided_weight_fraction(self) -> float:
        if not self.candidate_weight:
            return 0.0
        return self.returns_elided_weight / self.candidate_weight

    @property
    def blocked_weight(self) -> int:
        return (
            self.blocked_rule2_weight
            + self.blocked_rule3_weight
            + self.blocked_other_weight
        )

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI)."""
        return (
            f"inlined {self.inlined_sites} sites "
            f"({self.elided_weight_fraction:.1%} of return weight elided); "
            f"blocked weight: rule2={self.blocked_rule2_weight} "
            f"rule3={self.blocked_rule3_weight} "
            f"other={self.blocked_other_weight}"
        )


class PibeInliner(ModulePass):
    """The profile-guided indirect-branch-eliminating inliner.

    Parameters
    ----------
    profile:
        Edge profile providing function invocation counts for the
        constant-ratio inheritance heuristic.
    budget:
        Fraction (0..1] of cumulative direct-call weight to attempt.
    caller_threshold / callee_threshold:
        Rule 2 / Rule 3 complexity limits.
    lax_heuristics:
        Paper's best configuration: run at a very high budget while
        disabling Rules 2 and 3 for sites hot enough to fit a 99% budget
        (where the size heuristics were measured to be counterproductive).
    max_operations:
        Safety valve against runaway re-queueing.
    """

    name = "pibe-inliner"

    def __init__(
        self,
        profile: EdgeProfile,
        budget: float = 0.999,
        caller_threshold: int = DEFAULT_CALLER_THRESHOLD,
        callee_threshold: int = DEFAULT_CALLEE_THRESHOLD,
        lax_heuristics: bool = False,
        lax_budget: float = 0.99,
        max_operations: int = 500_000,
        costs: Optional[InlineCostCache] = None,
    ) -> None:
        if not 0.0 < budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {budget}")
        self.profile = profile
        self.budget = budget
        self.caller_threshold = caller_threshold
        self.callee_threshold = callee_threshold
        self.lax_heuristics = lax_heuristics
        self.lax_budget = lax_budget
        self.max_operations = max_operations
        #: cost cache shared with the rest of a build (the pipeline hands
        #: one cache to whatever inliner it constructs); private otherwise.
        self.costs = costs if costs is not None else InlineCostCache()

    # -- candidate gathering -------------------------------------------------

    @staticmethod
    def _profiled_sites(module: Module) -> List[Tuple[int, int, str]]:
        """(weight, site_id, caller) for every profiled direct call."""
        sites: List[Tuple[int, int, str]] = []
        for func in module:
            for inst in func.call_sites():
                if inst.opcode != Opcode.CALL:
                    continue
                weight = inst.attrs.get(ATTR_EDGE_COUNT, 0)
                if weight > 0:
                    assert inst.site_id is not None
                    sites.append((weight, inst.site_id, func.name))
        return sites

    # -- main driver -----------------------------------------------------------
    #
    # The greedy policy is written once, against an abstract *world* (see
    # _RealInlineWorld / _VirtualInlineWorld below). run() drives it over
    # the real module — semantically identical to the historical direct
    # implementation — while plan() drives it over a VirtualSpace and
    # records an InlineStep trace for later replay.

    def run(self, module: Module) -> InlineReport:
        return self._drive(_RealInlineWorld(module, self.costs))

    def plan(self, space: VirtualSpace) -> InlinePlan:
        """Decision phase: run the policy against ``space`` without
        touching any IR, returning the ordered step trace + report."""
        world = _VirtualInlineWorld(space)
        report = self._drive(world)
        return InlinePlan(steps=world.steps, report=report)

    def apply_plan(self, module: Module, plan: InlinePlan) -> InlineReport:
        """Apply phase: replay ``plan`` onto the real module."""
        apply_inline_steps(module, plan.steps)
        return plan.report

    def _drive(self, world: "_InlineWorld") -> InlineReport:
        report = InlineReport(budget=self.budget)
        # Mark inlining provenance as available even if nothing gets
        # inlined (the static flow analysis keys on the entry's presence).
        world.prepare()
        sites = sorted(world.profiled_sites(), key=lambda s: (-s[0], s[1]))
        report.total_profiled_sites = len(sites)
        report.total_profiled_weight = sum(w for w, _, _ in sites)

        limit = report.total_profiled_weight * self.budget
        lax_limit = report.total_profiled_weight * self.lax_budget
        candidates: List[Tuple[int, int, str]] = []
        cumulative = 0
        cutoff_weight = 0
        lax_cutoff_weight = 0
        for weight, site_id, caller in sites:
            if cumulative >= limit:
                break
            candidates.append((weight, site_id, caller))
            cutoff_weight = weight
            if cumulative < lax_limit:
                lax_cutoff_weight = weight
            cumulative += weight
        report.candidate_sites = len(candidates)
        report.candidate_weight = sum(w for w, _, _ in candidates)

        invocations: Dict[str, int] = defaultdict(
            int, dict(self.profile.invocations)
        )
        counter = itertools.count()
        heap: List[Tuple[int, int, int, str]] = [
            (-w, next(counter), sid, caller) for w, sid, caller in candidates
        ]
        heapq.heapify(heap)
        operations = 0

        while heap and operations < self.max_operations:
            neg_weight, _, site_id, caller_name = heapq.heappop(heap)
            weight = -neg_weight
            operations += 1
            located = world.locate(caller_name, site_id)
            if located is None:
                continue  # site disappeared under a previous transformation
            callee_name = world.site_callee(located)
            assert callee_name is not None

            lax = self.lax_heuristics and weight >= lax_cutoff_weight > 0

            # -- "other" blockers (optnone / noinline / recursion / asm) --
            if (
                not world.has_function(callee_name)
                or callee_name == caller_name
                or not world.is_inlinable(callee_name)
                or world.is_optnone(caller_name)
                or world.is_recursive(callee_name)
            ):
                report.blocked_other_weight += weight
                report.blocked_other_sites += 1
                self._count_block(report, world.subsystem(caller_name))
                continue

            # -- Rule 2: caller complexity -------------------------------
            if not lax and world.cost(caller_name) > self.caller_threshold:
                report.blocked_rule2_weight += weight
                report.blocked_rule2_sites += 1
                self._count_block(report, world.subsystem(caller_name))
                continue

            # -- Rule 3: callee complexity -------------------------------
            if not lax and world.cost(callee_name) > self.callee_threshold:
                report.blocked_rule3_weight += weight
                report.blocked_rule3_sites += 1
                self._count_block(report, world.subsystem(caller_name))
                continue

            clones = world.splice(caller_name, located, callee_name)
            report.inlined_sites += 1
            report.inlined_weight += weight
            report.returns_elided_sites += world.returns_count(callee_name)
            report.returns_elided_weight += weight

            # Constant-ratio inheritance for the callee's own call sites.
            callee_invocations = max(invocations.get(callee_name, 0), weight, 1)
            ratio = weight / callee_invocations
            world.note_ratio(weight, callee_invocations, ratio)
            for clone in clones:
                world.inherit(clone, ratio)
                if (
                    world.clone_is_call(clone)
                    and world.clone_weight(clone) >= max(cutoff_weight, 1)
                ):
                    # Clones whose callee can never be inlined would be
                    # re-blocked on every pop, double-counting blocked
                    # weight; their original site was already accounted.
                    clone_callee_name = world.clone_callee(clone) or ""
                    if (
                        not world.has_function(clone_callee_name)
                        or not world.is_inlinable(clone_callee_name)
                        or world.is_recursive(clone_callee_name)
                    ):
                        continue
                    heapq.heappush(
                        heap,
                        (
                            -world.clone_weight(clone),
                            next(counter),
                            world.clone_ref(clone),
                            caller_name,
                        ),
                    )
            invocations[callee_name] = max(
                invocations.get(callee_name, 0) - weight, 0
            )

        return report

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _locate(func: Function, site_id: int) -> Optional[Tuple[str, int]]:
        """Linear-scan location (kept as the index's reference semantics)."""
        for block in func.blocks.values():
            for idx, inst in enumerate(block.instructions):
                if inst.site_id == site_id:
                    return block.label, idx
        return None

    @staticmethod
    def _index_block(index: Dict[int, Tuple[str, int]], block) -> None:
        label = block.label
        for idx, inst in enumerate(block.instructions):
            if inst.site_id is not None:
                index[inst.site_id] = (label, idx)

    @classmethod
    def _build_index(cls, func: Function) -> Dict[int, Tuple[str, int]]:
        """Full site_id -> (block_label, idx) map for one caller."""
        index: Dict[int, Tuple[str, int]] = {}
        for block in func.blocks.values():
            cls._index_block(index, block)
        return index

    @classmethod
    def _reindex_after_inline(
        cls,
        index: Dict[int, Tuple[str, int]],
        caller: Function,
        block_label: str,
        result,
    ) -> None:
        """Incrementally repair the index after one ``inline_call``.

        Exactly three groups of blocks changed: the truncated original
        block (sites before the call keep their positions but are
        rescanned for simplicity), the continuation holding the moved
        tail (those sites' stale original-block entries are overwritten),
        and the freshly cloned callee blocks (new sites are added). The
        caller removes the consumed call's own entry before calling this.
        """
        cls._index_block(index, caller.blocks[block_label])
        cls._index_block(index, caller.blocks[result.continuation_label])
        for label in result.cloned_labels:
            cls._index_block(index, caller.blocks[label])

    @staticmethod
    def _inherit_counts(clone: Instruction, ratio: float) -> None:
        """Scale a cloned call site's profile metadata by the edge ratio.

        Counts round half-up rather than truncate: plain ``int()`` bled
        profile weight on every inheritance step (a site inherited through
        k levels lost up to k counts), breaking weight conservation for
        exactly-covering budgets.
        """
        if ATTR_EDGE_COUNT in clone.attrs:
            clone.attrs[ATTR_EDGE_COUNT] = int(
                clone.attrs[ATTR_EDGE_COUNT] * ratio + 0.5
            )
        if ATTR_VALUE_PROFILE in clone.attrs:
            clone.attrs[ATTR_VALUE_PROFILE] = [
                (target, int(count * ratio + 0.5))
                for target, count in clone.attrs[ATTR_VALUE_PROFILE]
            ]

    @staticmethod
    def _count_block(report: InlineReport, subsystem: Optional[str]) -> None:
        key = subsystem or "unknown"
        report.blocked_by_subsystem[key] = (
            report.blocked_by_subsystem.get(key, 0) + 1
        )


class _RealSite(NamedTuple):
    """A located call site in the real module (pre-materialization view)."""

    block_label: str
    idx: int
    inst: Instruction


class _InlineWorld:
    """Interface both inline worlds implement (documentation only)."""


class _RealInlineWorld(_InlineWorld):
    """Drives the policy directly against the module — the classic
    single-phase behaviour, splice-for-splice identical to the historical
    inline ``run()`` implementation."""

    def __init__(self, module: Module, costs: InlineCostCache) -> None:
        self.module = module
        self.costs = costs
        # site_id -> (block_label, idx) per caller, maintained incrementally
        # across inline operations (see _reindex_after_inline). Replaces a
        # per-pop linear scan over the caller's whole body, which dominated
        # inliner time on large modules.
        self._site_index: Dict[str, Dict[int, Tuple[str, int]]] = {}

    def prepare(self) -> None:
        self.module.metadata.setdefault(METADATA_INLINED_PROMOTED, [])

    def profiled_sites(self) -> List[Tuple[int, int, str]]:
        return PibeInliner._profiled_sites(self.module)

    def locate(self, caller_name: str, site_id: int) -> Optional[_RealSite]:
        caller = self.module.functions.get(caller_name)
        if caller is None:
            return None
        index = self._site_index.get(caller_name)
        if index is None:
            index = PibeInliner._build_index(caller)
            self._site_index[caller_name] = index
        located = index.get(site_id)
        if located is None:
            return None
        block_label, idx = located
        return _RealSite(
            block_label, idx, caller.blocks[block_label].instructions[idx]
        )

    def site_callee(self, site: _RealSite) -> Optional[str]:
        return site.inst.callee

    def has_function(self, name: str) -> bool:
        return name in self.module.functions

    def is_inlinable(self, name: str) -> bool:
        return self.module.functions[name].is_inlinable

    def is_optnone(self, name: str) -> bool:
        return self.module.functions[name].has_attr(FunctionAttr.OPTNONE)

    def is_recursive(self, name: str) -> bool:
        return self.module.functions[name].is_recursive()

    def subsystem(self, name: str) -> Optional[str]:
        return self.module.functions[name].subsystem

    def returns_count(self, name: str) -> int:
        return len(self.module.functions[name].returns())

    def cost(self, name: str) -> int:
        return self.costs.cost(self.module.functions[name])

    def splice(
        self, caller_name: str, site: _RealSite, callee_name: str
    ) -> List[Instruction]:
        callee = self.module.functions[callee_name]
        # Materialize the caller on copy-on-write modules before
        # mutating it; the exact clone preserves labels and indices,
        # so the site index stays valid across materialization.
        caller = self.module.mutable(caller_name)
        inst = caller.blocks[site.block_label].instructions[site.idx]
        record_inlined_promotion(self.module, inst)
        result = inline_call(caller, site.block_label, site.idx, callee)
        # Exact incremental cost update: the call (5 + 5*args) is
        # replaced by the callee's body plus one jump to the
        # continuation; cloned rets become jumps at equal cost.
        self.costs.add_delta(
            caller_name,
            self.costs.cost(callee)
            - instruction_cost(inst)
            + STANDARD_INSTRUCTION_COST,
        )
        index = self._site_index[caller_name]
        index.pop(inst.site_id, None)  # the call instruction is gone
        PibeInliner._reindex_after_inline(
            index, caller, site.block_label, result
        )
        return [
            clone
            for clones in result.new_call_sites.values()
            for clone in clones
        ]

    def note_ratio(
        self, weight: int, callee_invocations: int, ratio: float
    ) -> None:
        pass  # the real world scales clones directly via inherit()

    def inherit(self, clone: Instruction, ratio: float) -> None:
        PibeInliner._inherit_counts(clone, ratio)

    def clone_is_call(self, clone: Instruction) -> bool:
        return clone.opcode == Opcode.CALL

    def clone_weight(self, clone: Instruction) -> int:
        return clone.attrs.get(ATTR_EDGE_COUNT, 0)

    def clone_callee(self, clone: Instruction) -> Optional[str]:
        return clone.callee

    def clone_ref(self, clone: Instruction) -> int:
        assert clone.site_id is not None
        return clone.site_id


class _VirtualInlineWorld(_InlineWorld):
    """Drives the policy against a :class:`VirtualSpace`, recording the
    ordered :class:`InlineStep` trace instead of mutating IR."""

    def __init__(self, space: VirtualSpace) -> None:
        self.space = space
        self.steps: List[InlineStep] = []
        self._current: Optional[InlineStep] = None

    def prepare(self) -> None:
        pass  # provenance metadata is stamped by apply_inline_steps

    def profiled_sites(self) -> List[Tuple[int, int, str]]:
        return self.space.profiled_sites()

    def locate(self, caller_name: str, vid: int) -> Optional[VirtualSite]:
        return self.space.locate(caller_name, vid)

    def site_callee(self, site: VirtualSite) -> Optional[str]:
        return site.callee

    def has_function(self, name: str) -> bool:
        return self.space.has_function(name)

    def is_inlinable(self, name: str) -> bool:
        return self.space.seed(name).is_inlinable

    def is_optnone(self, name: str) -> bool:
        return self.space.seed(name).is_optnone

    def is_recursive(self, name: str) -> bool:
        return self.space.is_recursive(name)

    def subsystem(self, name: str) -> Optional[str]:
        return self.space.seed(name).subsystem

    def returns_count(self, name: str) -> int:
        return self.space.seed(name).returns_count

    def cost(self, name: str) -> int:
        return self.space.cost(name)

    def splice(
        self, caller_name: str, site: VirtualSite, callee_name: str
    ) -> List[VirtualSite]:
        step = InlineStep(caller=caller_name, vid=site.vid, callee=callee_name)
        clones, pairs = self.space.splice(caller_name, site, callee_name)
        step.clones = pairs
        self.steps.append(step)
        self._current = step
        return clones

    def note_ratio(
        self, weight: int, callee_invocations: int, ratio: float
    ) -> None:
        assert self._current is not None
        self._current.weight = weight
        self._current.invocations = callee_invocations
        self._current.ratio = ratio

    def inherit(self, clone: VirtualSite, ratio: float) -> None:
        if clone.has_weight:
            clone.weight = int(clone.weight * ratio + 0.5)

    def clone_is_call(self, clone: VirtualSite) -> bool:
        return clone.opcode == Opcode.CALL

    def clone_weight(self, clone: VirtualSite) -> int:
        return clone.weight

    def clone_callee(self, clone: VirtualSite) -> Optional[str]:
        return clone.callee

    def clone_ref(self, clone: VirtualSite) -> int:
        return clone.vid


def apply_inline_steps(
    module: Module, steps: Sequence[InlineStep]
) -> None:
    """Replay a planned inline trace onto the real module.

    Splices run in exact plan order with the same ``inline_call``
    machinery the single-phase pass uses, so global site ids and inline
    label serials are minted in the identical sequence — the output is
    bit-identical to driving the policy on the module directly. Negative
    (virtual clone) ids resolve through ``InlineResult.new_call_sites``
    as the real clones come into existence.
    """
    module.metadata.setdefault(METADATA_INLINED_PROMOTED, [])
    vid_to_real: Dict[int, int] = {}
    indexes: Dict[str, Dict[int, Tuple[str, int]]] = {}
    for step in steps:
        caller = module.mutable(step.caller)
        index = indexes.get(step.caller)
        if index is None:
            index = PibeInliner._build_index(caller)
            indexes[step.caller] = index
        sid = step.vid if step.vid >= 0 else vid_to_real[step.vid]
        block_label, idx = index[sid]
        inst = caller.blocks[block_label].instructions[idx]
        callee = module.functions[step.callee]
        record_inlined_promotion(module, inst)
        result = inline_call(caller, block_label, idx, callee)
        index.pop(sid, None)
        PibeInliner._reindex_after_inline(index, caller, block_label, result)
        if step.ratio is not None:
            for clones in result.new_call_sites.values():
                for clone in clones:
                    PibeInliner._inherit_counts(clone, step.ratio)
        for clone_vid, src_vid in step.clones:
            src_sid = src_vid if src_vid >= 0 else vid_to_real[src_vid]
            vid_to_real[clone_vid] = result.new_call_sites[src_sid][0].site_id
