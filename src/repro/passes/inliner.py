"""PIBE's profile-guided greedy inliner (paper Section 5.2).

Inlining here is a *security* transformation: every inlined call removes a
backward edge (the callee's return) from the dynamic path, which would
otherwise need costly transient-execution hardening. The algorithm:

Rule 1 — inline only hot call sites: a budget selects the hottest call
sites covering the requested percentage of cumulative execution count;
sites are processed hottest-first from a priority queue so cold inlining
can never block hot inlining.

Rule 2 — avoid excessive complexity in the caller: skip a site when the
caller's InlineCost exceeds a threshold (12,000), preventing poor stack
frame utilization from long merged call chains.

Rule 3 — skip callees whose own complexity exceeds a lower threshold
(3,000), so one big callee cannot deplete the caller's budget that many
small ones could use (Figure 1).

After inlining a call with execution count ``ε`` into a caller, the
callee's own call sites appear in the caller; each inherits a count equal
to its count in the callee scaled by ``ε / invocations(callee)`` —
Scheifler-style constant-ratio inheritance — and re-enters the queue if it
still qualifies as hot.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.clone import inline_call, record_inlined_promotion
from repro.ir.types import (
    ATTR_EDGE_COUNT,
    ATTR_VALUE_PROFILE,
    METADATA_INLINED_PROMOTED,
    FunctionAttr,
    Opcode,
)
from repro.passes.inline_cost import (
    DEFAULT_CALLEE_THRESHOLD,
    DEFAULT_CALLER_THRESHOLD,
    STANDARD_INSTRUCTION_COST,
    InlineCostCache,
    instruction_cost,
)
from repro.passes.manager import ModulePass
from repro.profiling.profile_data import EdgeProfile


@dataclass
class InlineReport:
    """Inlining statistics backing Tables 8, 9 and 10."""

    budget: float
    #: total profiled direct-call weight in the module (post-ICP)
    total_profiled_weight: int = 0
    #: number of profiled direct call sites
    total_profiled_sites: int = 0
    #: weight of the initial hot candidate set (Table 9 "Ovr.")
    candidate_weight: int = 0
    #: initial hot candidate sites (Table 10 "Candidates")
    candidate_sites: int = 0
    inlined_sites: int = 0
    inlined_weight: int = 0
    #: static return instructions elided (became jumps) — Table 8
    returns_elided_sites: int = 0
    #: dynamic return weight elided — Table 8
    returns_elided_weight: int = 0
    blocked_rule2_weight: int = 0
    blocked_rule2_sites: int = 0
    blocked_rule3_weight: int = 0
    blocked_rule3_sites: int = 0
    blocked_other_weight: int = 0
    blocked_other_sites: int = 0
    #: blocked sites per caller subsystem (Table 9 discussion)
    blocked_by_subsystem: Dict[str, int] = field(default_factory=dict)

    @property
    def elided_weight_fraction(self) -> float:
        if not self.candidate_weight:
            return 0.0
        return self.returns_elided_weight / self.candidate_weight

    @property
    def blocked_weight(self) -> int:
        return (
            self.blocked_rule2_weight
            + self.blocked_rule3_weight
            + self.blocked_other_weight
        )

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI)."""
        return (
            f"inlined {self.inlined_sites} sites "
            f"({self.elided_weight_fraction:.1%} of return weight elided); "
            f"blocked weight: rule2={self.blocked_rule2_weight} "
            f"rule3={self.blocked_rule3_weight} "
            f"other={self.blocked_other_weight}"
        )


class PibeInliner(ModulePass):
    """The profile-guided indirect-branch-eliminating inliner.

    Parameters
    ----------
    profile:
        Edge profile providing function invocation counts for the
        constant-ratio inheritance heuristic.
    budget:
        Fraction (0..1] of cumulative direct-call weight to attempt.
    caller_threshold / callee_threshold:
        Rule 2 / Rule 3 complexity limits.
    lax_heuristics:
        Paper's best configuration: run at a very high budget while
        disabling Rules 2 and 3 for sites hot enough to fit a 99% budget
        (where the size heuristics were measured to be counterproductive).
    max_operations:
        Safety valve against runaway re-queueing.
    """

    name = "pibe-inliner"

    def __init__(
        self,
        profile: EdgeProfile,
        budget: float = 0.999,
        caller_threshold: int = DEFAULT_CALLER_THRESHOLD,
        callee_threshold: int = DEFAULT_CALLEE_THRESHOLD,
        lax_heuristics: bool = False,
        lax_budget: float = 0.99,
        max_operations: int = 500_000,
        costs: Optional[InlineCostCache] = None,
    ) -> None:
        if not 0.0 < budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {budget}")
        self.profile = profile
        self.budget = budget
        self.caller_threshold = caller_threshold
        self.callee_threshold = callee_threshold
        self.lax_heuristics = lax_heuristics
        self.lax_budget = lax_budget
        self.max_operations = max_operations
        #: cost cache shared with the rest of a build (the pipeline hands
        #: one cache to whatever inliner it constructs); private otherwise.
        self.costs = costs if costs is not None else InlineCostCache()

    # -- candidate gathering -------------------------------------------------

    @staticmethod
    def _profiled_sites(module: Module) -> List[Tuple[int, int, str]]:
        """(weight, site_id, caller) for every profiled direct call."""
        sites: List[Tuple[int, int, str]] = []
        for func in module:
            for inst in func.call_sites():
                if inst.opcode != Opcode.CALL:
                    continue
                weight = inst.attrs.get(ATTR_EDGE_COUNT, 0)
                if weight > 0:
                    assert inst.site_id is not None
                    sites.append((weight, inst.site_id, func.name))
        return sites

    # -- main driver -----------------------------------------------------------

    def run(self, module: Module) -> InlineReport:
        report = InlineReport(budget=self.budget)
        # Mark inlining provenance as available even if nothing gets
        # inlined (the static flow analysis keys on the entry's presence).
        module.metadata.setdefault(METADATA_INLINED_PROMOTED, [])
        sites = sorted(
            self._profiled_sites(module), key=lambda s: (-s[0], s[1])
        )
        report.total_profiled_sites = len(sites)
        report.total_profiled_weight = sum(w for w, _, _ in sites)

        limit = report.total_profiled_weight * self.budget
        lax_limit = report.total_profiled_weight * self.lax_budget
        candidates: List[Tuple[int, int, str]] = []
        cumulative = 0
        cutoff_weight = 0
        lax_cutoff_weight = 0
        for weight, site_id, caller in sites:
            if cumulative >= limit:
                break
            candidates.append((weight, site_id, caller))
            cutoff_weight = weight
            if cumulative < lax_limit:
                lax_cutoff_weight = weight
            cumulative += weight
        report.candidate_sites = len(candidates)
        report.candidate_weight = sum(w for w, _, _ in candidates)

        costs = self.costs
        invocations: Dict[str, int] = defaultdict(
            int, dict(self.profile.invocations)
        )
        counter = itertools.count()
        heap: List[Tuple[int, int, int, str]] = [
            (-w, next(counter), sid, caller) for w, sid, caller in candidates
        ]
        heapq.heapify(heap)
        operations = 0
        # site_id -> (block_label, idx) per caller, maintained incrementally
        # across inline operations (see _reindex_after_inline). Replaces a
        # per-pop linear scan over the caller's whole body, which dominated
        # inliner time on large modules.
        site_index: Dict[str, Dict[int, Tuple[str, int]]] = {}

        while heap and operations < self.max_operations:
            neg_weight, _, site_id, caller_name = heapq.heappop(heap)
            weight = -neg_weight
            operations += 1
            caller = module.functions.get(caller_name)
            if caller is None:
                continue
            index = site_index.get(caller_name)
            if index is None:
                index = self._build_index(caller)
                site_index[caller_name] = index
            located = index.get(site_id)
            if located is None:
                continue  # site disappeared under a previous transformation
            block_label, idx = located
            inst = caller.blocks[block_label].instructions[idx]
            callee_name = inst.callee
            assert callee_name is not None
            callee = module.functions.get(callee_name)

            lax = self.lax_heuristics and weight >= lax_cutoff_weight > 0

            # -- "other" blockers (optnone / noinline / recursion / asm) --
            if (
                callee is None
                or callee_name == caller_name
                or not callee.is_inlinable
                or caller.has_attr(FunctionAttr.OPTNONE)
                or callee.is_recursive()
            ):
                report.blocked_other_weight += weight
                report.blocked_other_sites += 1
                self._note_block(report, caller)
                continue

            # -- Rule 2: caller complexity -------------------------------
            if not lax and costs.cost(caller) > self.caller_threshold:
                report.blocked_rule2_weight += weight
                report.blocked_rule2_sites += 1
                self._note_block(report, caller)
                continue

            # -- Rule 3: callee complexity -------------------------------
            if not lax and costs.cost(callee) > self.callee_threshold:
                report.blocked_rule3_weight += weight
                report.blocked_rule3_sites += 1
                self._note_block(report, caller)
                continue

            # Materialize the caller on copy-on-write modules before
            # mutating it; the exact clone preserves labels and indices,
            # so the site index stays valid across materialization.
            caller = module.mutable(caller_name)
            inst = caller.blocks[block_label].instructions[idx]
            record_inlined_promotion(module, inst)
            result = inline_call(caller, block_label, idx, callee)
            # Exact incremental cost update: the call (5 + 5*args) is
            # replaced by the callee's body plus one jump to the
            # continuation; cloned rets become jumps at equal cost.
            costs.add_delta(
                caller_name,
                costs.cost(callee)
                - instruction_cost(inst)
                + STANDARD_INSTRUCTION_COST,
            )
            index.pop(site_id, None)  # the call instruction is gone
            self._reindex_after_inline(index, caller, block_label, result)
            report.inlined_sites += 1
            report.inlined_weight += weight
            report.returns_elided_sites += len(callee.returns())
            report.returns_elided_weight += weight

            # Constant-ratio inheritance for the callee's own call sites.
            callee_invocations = max(invocations.get(callee_name, 0), weight, 1)
            ratio = weight / callee_invocations
            for clones in result.new_call_sites.values():
                for clone in clones:
                    self._inherit_counts(clone, ratio)
                    if (
                        clone.opcode == Opcode.CALL
                        and clone.attrs.get(ATTR_EDGE_COUNT, 0) >= max(cutoff_weight, 1)
                    ):
                        # Clones whose callee can never be inlined would be
                        # re-blocked on every pop, double-counting blocked
                        # weight; their original site was already accounted.
                        clone_callee = module.functions.get(clone.callee or "")
                        if (
                            clone_callee is None
                            or not clone_callee.is_inlinable
                            or clone_callee.is_recursive()
                        ):
                            continue
                        assert clone.site_id is not None
                        new_weight = clone.attrs[ATTR_EDGE_COUNT]
                        heapq.heappush(
                            heap,
                            (-new_weight, next(counter), clone.site_id, caller_name),
                        )
            invocations[callee_name] = max(
                invocations.get(callee_name, 0) - weight, 0
            )

        return report

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _locate(func: Function, site_id: int) -> Optional[Tuple[str, int]]:
        """Linear-scan location (kept as the index's reference semantics)."""
        for block in func.blocks.values():
            for idx, inst in enumerate(block.instructions):
                if inst.site_id == site_id:
                    return block.label, idx
        return None

    @staticmethod
    def _index_block(index: Dict[int, Tuple[str, int]], block) -> None:
        label = block.label
        for idx, inst in enumerate(block.instructions):
            if inst.site_id is not None:
                index[inst.site_id] = (label, idx)

    @classmethod
    def _build_index(cls, func: Function) -> Dict[int, Tuple[str, int]]:
        """Full site_id -> (block_label, idx) map for one caller."""
        index: Dict[int, Tuple[str, int]] = {}
        for block in func.blocks.values():
            cls._index_block(index, block)
        return index

    @classmethod
    def _reindex_after_inline(
        cls,
        index: Dict[int, Tuple[str, int]],
        caller: Function,
        block_label: str,
        result,
    ) -> None:
        """Incrementally repair the index after one ``inline_call``.

        Exactly three groups of blocks changed: the truncated original
        block (sites before the call keep their positions but are
        rescanned for simplicity), the continuation holding the moved
        tail (those sites' stale original-block entries are overwritten),
        and the freshly cloned callee blocks (new sites are added). The
        caller removes the consumed call's own entry before calling this.
        """
        cls._index_block(index, caller.blocks[block_label])
        cls._index_block(index, caller.blocks[result.continuation_label])
        for label in result.cloned_labels:
            cls._index_block(index, caller.blocks[label])

    @staticmethod
    def _inherit_counts(clone: Instruction, ratio: float) -> None:
        """Scale a cloned call site's profile metadata by the edge ratio.

        Counts round half-up rather than truncate: plain ``int()`` bled
        profile weight on every inheritance step (a site inherited through
        k levels lost up to k counts), breaking weight conservation for
        exactly-covering budgets.
        """
        if ATTR_EDGE_COUNT in clone.attrs:
            clone.attrs[ATTR_EDGE_COUNT] = int(
                clone.attrs[ATTR_EDGE_COUNT] * ratio + 0.5
            )
        if ATTR_VALUE_PROFILE in clone.attrs:
            clone.attrs[ATTR_VALUE_PROFILE] = [
                (target, int(count * ratio + 0.5))
                for target, count in clone.attrs[ATTR_VALUE_PROFILE]
            ]

    @staticmethod
    def _note_block(report: InlineReport, caller: Function) -> None:
        key = caller.subsystem or "unknown"
        report.blocked_by_subsystem[key] = (
            report.blocked_by_subsystem.get(key, 0) + 1
        )
