"""The virtual decision space behind the decision/transform split.

The PIBE inliner and the default inliner are greedy policies over a small
set of per-function facts: the ordered call descriptors of every block,
profile weights, InlineCost, recursion/inlinability flags. None of those
facts require real IR to evaluate — so the decision phase of an inline
pass runs against a :class:`VirtualSpace`, a lightweight shadow of the
module holding exactly those facts, and emits an ordered
:class:`InlinePlan` of :class:`InlineStep` records. The apply phase
(:func:`repro.passes.inliner.apply_inline_steps`) replays the steps
against the real module with the real ``inline_call`` machinery, in the
exact order the policy decided them, so global id/serial allocation — and
therefore the output IR — is bit-identical to running the policy directly
on the module.

Virtual functions track only call descriptors (``VirtualSite``); plain
instructions participate solely through the precomputed ``base_cost`` and
the exact per-splice cost delta the real engines also use. A virtual
splice mirrors ``inline_call``: the consumed site's block is truncated,
the callee's call descriptors are cloned (in callee body order) into
appended blocks, and the post-call descriptors move to an appended
continuation — preserving the program order a rescan or re-queue
observes. Clones receive fresh *negative* ids so they can never collide
with real site ids; the plan records the (clone, source) pairing that
lets the replay resolve each virtual id to the real site id minted by
``inline_call``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.ir.function import Function
from repro.ir.types import ATTR_EDGE_COUNT, FunctionAttr, Opcode
from repro.passes.inline_cost import (
    STANDARD_INSTRUCTION_COST,
    instruction_cost,
)


class SiteSeed(NamedTuple):
    """Immutable descriptor of one real call instruction."""

    site_id: int
    opcode: Opcode
    callee: Optional[str]
    weight: int
    has_weight: bool
    num_args: int


@dataclass(frozen=True)
class FunctionSeed:
    """Everything the inline policies can observe about one function.

    ``blocks`` holds only blocks that contain at least one call
    descriptor; dropping empty blocks is safe because both policies only
    ever order decisions by the per-block call lists in block order.
    """

    name: str
    blocks: Tuple[Tuple[SiteSeed, ...], ...]
    calls_self: bool
    returns_count: int
    base_cost: int
    is_inlinable: bool
    is_optnone: bool
    subsystem: str


def seed_function(func: Function) -> FunctionSeed:
    """Scan one real function into its decision-phase summary."""
    blocks: List[Tuple[SiteSeed, ...]] = []
    calls_self = False
    returns_count = 0
    cost = 0
    for block in func.blocks.values():
        sites: List[SiteSeed] = []
        for inst in block.instructions:
            cost += instruction_cost(inst)
            if inst.opcode == Opcode.RET:
                returns_count += 1
            if inst.is_call:
                assert inst.site_id is not None
                weight = inst.attrs.get(ATTR_EDGE_COUNT)
                sites.append(
                    SiteSeed(
                        site_id=inst.site_id,
                        opcode=inst.opcode,
                        callee=inst.callee,
                        weight=0 if weight is None else weight,
                        has_weight=weight is not None,
                        num_args=inst.num_args,
                    )
                )
                if inst.opcode == Opcode.CALL and inst.callee == func.name:
                    calls_self = True
        if sites:
            blocks.append(tuple(sites))
    return FunctionSeed(
        name=func.name,
        blocks=tuple(blocks),
        calls_self=calls_self,
        returns_count=returns_count,
        base_cost=cost,
        is_inlinable=func.is_inlinable,
        is_optnone=func.has_attr(FunctionAttr.OPTNONE),
        subsystem=func.subsystem,
    )


class VirtualSite:
    """A mutable call descriptor inside the virtual space.

    ``vid`` equals the real site id for descriptors seeded from the
    module and is a fresh negative integer for virtual clones.
    """

    __slots__ = (
        "vid",
        "opcode",
        "callee",
        "weight",
        "has_weight",
        "num_args",
        "consumed",
        "block",
    )

    def __init__(
        self,
        vid: int,
        opcode: Opcode,
        callee: Optional[str],
        weight: int,
        has_weight: bool,
        num_args: int,
    ) -> None:
        self.vid = vid
        self.opcode = opcode
        self.callee = callee
        self.weight = weight
        self.has_weight = has_weight
        self.num_args = num_args
        self.consumed = False
        self.block: List["VirtualSite"] = []


class VirtualFunction:
    """One function's mutable call-descriptor CFG plus dynamic flags."""

    __slots__ = ("name", "blocks", "calls_self", "seed")

    def __init__(self, seed: FunctionSeed) -> None:
        self.name = seed.name
        self.blocks: List[List[VirtualSite]] = []
        self.calls_self = seed.calls_self
        self.seed = seed


@dataclass
class InlineStep:
    """One committed inline decision, in policy order.

    ``clones`` pairs each virtual clone id with the id of the callee
    descriptor it was cloned from, so the replay can chase
    ``InlineResult.new_call_sites`` and bind clone vids to the real site
    ids ``inline_call`` mints. ``ratio`` carries the PIBE inliner's
    constant-ratio inheritance factor (``None`` for the default inliner,
    which copies clone counts verbatim).
    """

    caller: str
    vid: int
    callee: str
    weight: int = 0
    invocations: int = 0
    ratio: Optional[float] = None
    clones: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class InlinePlan:
    """Ordered inline decisions plus the report the policy computed."""

    steps: List[InlineStep] = field(default_factory=list)
    report: object = None

    @property
    def touched_callers(self) -> frozenset:
        return frozenset(s.caller for s in self.steps)


class VirtualSpace:
    """A decision-phase shadow of one module.

    Functions materialize lazily from ``seed_fn`` (typically a mix of a
    shared per-profile seed cache for untouched functions and fresh scans
    for ICP-touched ones). All mutation happens through :meth:`splice`,
    which mirrors ``inline_call``'s effect on call-descriptor order.
    """

    def __init__(
        self,
        names: List[str],
        seed_fn: Callable[[str], FunctionSeed],
    ) -> None:
        self._names = list(names)
        self._present = set(self._names)
        self._seed_fn = seed_fn
        self._seeds: Dict[str, FunctionSeed] = {}
        self._functions: Dict[str, VirtualFunction] = {}
        self._sites: Dict[int, VirtualSite] = {}
        self._cost_deltas: Dict[str, int] = {}
        self._next_clone_vid = -1

    # -- function access -----------------------------------------------------

    def has_function(self, name: str) -> bool:
        return name in self._present

    def seed(self, name: str) -> FunctionSeed:
        seed = self._seeds.get(name)
        if seed is None:
            seed = self._seed_fn(name)
            self._seeds[name] = seed
        return seed

    def function(self, name: str) -> Optional[VirtualFunction]:
        vf = self._functions.get(name)
        if vf is not None:
            return vf
        if name not in self._present:
            return None
        seed = self.seed(name)
        vf = VirtualFunction(seed)
        for block_seed in seed.blocks:
            block: List[VirtualSite] = []
            for s in block_seed:
                site = VirtualSite(
                    vid=s.site_id,
                    opcode=s.opcode,
                    callee=s.callee,
                    weight=s.weight,
                    has_weight=s.has_weight,
                    num_args=s.num_args,
                )
                site.block = block
                block.append(site)
                self._sites[site.vid] = site
            vf.blocks.append(block)
        self._functions[name] = vf
        return vf

    def is_recursive(self, name: str) -> bool:
        """Mirrors ``Function.is_recursive()``: a direct self-call exists.

        Self-calls are never consumed (both policies block them), so the
        flag only ever turns on — when a splice clones a call to the
        caller into the caller itself.
        """
        vf = self._functions.get(name)
        if vf is not None:
            return vf.calls_self
        return self.seed(name).calls_self

    # -- cost model ----------------------------------------------------------

    def cost(self, name: str) -> int:
        """Exact current InlineCost: seed cost plus splice deltas.

        Matches both real engines: ``InlineCostCache.add_delta`` applies
        the identical exact delta, and a post-``invalidate`` full rewalk
        recomputes the identical total (a splice replaces the call,
        ``5 + 5*args``, with the callee body, where cloned rets become
        equal-cost jumps, plus one jump to the continuation).
        """
        return self.seed(name).base_cost + self._cost_deltas.get(name, 0)

    # -- queries used by the policy drivers ------------------------------------

    def profiled_sites(self) -> List[Tuple[int, int, str]]:
        """(weight, vid, caller) for every profiled direct call, in module
        iteration order — mirrors ``PibeInliner._profiled_sites``."""
        sites: List[Tuple[int, int, str]] = []
        for name in self._names:
            seed = self.seed(name)
            for block in seed.blocks:
                for s in block:
                    if s.opcode == Opcode.CALL and s.weight > 0:
                        sites.append((s.weight, s.site_id, name))
        return sites

    def locate(self, caller_name: str, vid: int) -> Optional[VirtualSite]:
        """The live descriptor for ``vid``, or ``None`` if it was consumed
        (the virtual analogue of a stale site-index entry)."""
        if self.function(caller_name) is None:
            return None
        site = self._sites.get(vid)
        if site is None or site.consumed:
            return None
        return site

    # -- mutation --------------------------------------------------------------

    def splice(
        self, caller_name: str, site: VirtualSite, callee_name: str
    ) -> Tuple[List[VirtualSite], List[Tuple[int, int]]]:
        """Virtually inline ``callee_name`` at ``site``.

        Returns the clone descriptors in ``InlineResult.new_call_sites``
        iteration order (callee body order) plus the (clone_vid,
        source_vid) pairs the replay needs.
        """
        caller = self.function(caller_name)
        callee = self.function(callee_name)
        assert caller is not None and callee is not None
        block = site.block
        pos = next(i for i, s in enumerate(block) if s is site)
        tail = block[pos + 1 :]
        del block[pos:]
        site.consumed = True

        clones: List[VirtualSite] = []
        pairs: List[Tuple[int, int]] = []
        new_blocks: List[List[VirtualSite]] = []
        for src_block in callee.blocks:
            new_block: List[VirtualSite] = []
            for src in src_block:
                vid = self._next_clone_vid
                self._next_clone_vid -= 1
                clone = VirtualSite(
                    vid=vid,
                    opcode=src.opcode,
                    callee=src.callee,
                    weight=src.weight,
                    has_weight=src.has_weight,
                    num_args=src.num_args,
                )
                clone.block = new_block
                new_block.append(clone)
                self._sites[vid] = clone
                clones.append(clone)
                pairs.append((vid, src.vid))
                if clone.opcode == Opcode.CALL and clone.callee == caller_name:
                    caller.calls_self = True
            if new_block:
                new_blocks.append(new_block)
        caller.blocks.extend(new_blocks)
        if tail:
            for s in tail:
                s.block = tail
            caller.blocks.append(tail)

        # The exact incremental cost update the real engines apply.
        self._cost_deltas[caller_name] = self._cost_deltas.get(
            caller_name, 0
        ) + (
            self.cost(callee_name)
            - (
                STANDARD_INSTRUCTION_COST
                + STANDARD_INSTRUCTION_COST * site.num_args
            )
            + STANDARD_INSTRUCTION_COST
        )
        return clones, pairs
