"""LLVM-style InlineCost analysis (paper Section 5.2, Rule 2).

The analysis computes a numerical cost heuristic for each instruction in a
function and returns the sum. Most instructions incur a standard cost of 5
(an approximation of average x86 instruction size); a nested call costs
``5 + 5 * num_args``, accounting for the argument-setup instructions plus
the call itself.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode

#: Standard per-instruction cost on x86 (paper Section 5.2).
STANDARD_INSTRUCTION_COST = 5

#: Rule 2: maximum caller complexity before inlining into it stops
#: (determined experimentally in the paper, Section 5.2).
DEFAULT_CALLER_THRESHOLD = 12_000

#: Rule 3: maximum callee complexity for an inlining candidate
#: (LLVM's hot-branch inhibitor threshold, Section 5.2).
DEFAULT_CALLEE_THRESHOLD = 3_000


def instruction_cost(inst: Instruction) -> int:
    """Cost of a single instruction."""
    if inst.opcode in (Opcode.CALL, Opcode.ICALL):
        return STANDARD_INSTRUCTION_COST + STANDARD_INSTRUCTION_COST * inst.num_args
    return STANDARD_INSTRUCTION_COST


def function_cost(func: Function) -> int:
    """InlineCost of a whole function body."""
    return sum(instruction_cost(inst) for inst in func.instructions())


class InlineCostCache:
    """Memoized function costs with explicit invalidation.

    The greedy inliner re-queries caller complexity after every splice;
    recomputing from scratch each time is quadratic, so costs are cached and
    invalidated for the one function each inline operation mutates.
    """

    def __init__(self) -> None:
        self._costs: Dict[str, int] = {}

    def cost(self, func: Function) -> int:
        cached = self._costs.get(func.name)
        if cached is None:
            cached = function_cost(func)
            self._costs[func.name] = cached
        return cached

    def invalidate(self, name: str) -> None:
        self._costs.pop(name, None)

    def add_delta(self, name: str, delta: int) -> Optional[int]:
        """Adjust a cached cost incrementally; returns the new value if the
        entry was cached."""
        if name in self._costs:
            self._costs[name] += delta
            return self._costs[name]
        return None
