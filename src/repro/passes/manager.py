"""Pass manager: sequences module transformations and collects their
reports, mirroring how PIBE's passes run over linked bitcode via ``opt``."""

from __future__ import annotations

import time
from typing import Any, Dict, List, NamedTuple

from repro.ir.module import Module
from repro.ir.validate import validate_module


class PassRecord(NamedTuple):
    """One executed pass: its name, wall time and whatever it reported."""

    name: str
    seconds: float
    report: Any


class ModulePass:
    """Base class for module transformations.

    Subclasses implement :meth:`run` and may return an arbitrary report
    object (statistics consumed by the evaluation harness).
    """

    #: Human-readable pass name; defaults to the class name.
    name: str = ""

    def run(self, module: Module) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FunctionPass(ModulePass):
    """Convenience base that visits every function."""

    def run(self, module: Module) -> Any:
        reports = {}
        for func in module:
            out = self.run_on_function(func, module)
            if out is not None:
                reports[func.name] = out
        return reports or None

    def run_on_function(self, func, module: Module) -> Any:
        raise NotImplementedError


class PassManager:
    """Runs a pipeline of passes over a module.

    Parameters
    ----------
    validate_after_each:
        Verify the module after every pass; catches transformation bugs at
        their source at the price of extra scans (on by default — the
        synthetic kernel is small enough).
    verify_each:
        Additionally run the static analyzer (:mod:`repro.static`) at every
        pass boundary. ``True`` runs every registered rule; a list of rule
        names / code prefixes selects a subset. Error-severity findings
        raise :class:`repro.static.analyzer.StaticAnalysisError` naming the
        offending pass.
    verify_profile:
        Edge profile handed to profile-dependent rules (flow conservation)
        when ``verify_each`` is active.
    """

    def __init__(
        self,
        validate_after_each: bool = True,
        verify_each: Any = False,
        verify_profile: Any = None,
    ) -> None:
        self.passes: List[ModulePass] = []
        self.records: List[PassRecord] = []
        self.validate_after_each = validate_after_each
        self.verify_each = verify_each
        self.verify_profile = verify_profile

    def add(self, pass_: ModulePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> Dict[str, Any]:
        """Execute all passes in order; returns pass name -> report."""
        reports: Dict[str, Any] = {}
        for pass_ in self.passes:
            name = pass_.name or type(pass_).__name__
            start = time.perf_counter()
            report = pass_.run(module)
            elapsed = time.perf_counter() - start
            self.records.append(PassRecord(name, elapsed, report))
            reports[name] = report
            # Invalidate derived artifacts (compiled execution programs)
            # that were built against the pre-transform IR.
            module.bump_version()
            if self.validate_after_each:
                validate_module(module)
            if self.verify_each:
                # Imported lazily: repro.static pulls in hardening/profiling
                # modules that themselves import this pass manager.
                from repro.static.analyzer import assert_clean

                rules = None if self.verify_each is True else self.verify_each
                assert_clean(
                    module,
                    rules=rules,
                    profile=self.verify_profile,
                    context=f"after pass {name!r}",
                )
        return reports


def run_pipeline(
    module: Module,
    passes: List[ModulePass],
    validate: bool = True,
    verify_each: Any = False,
    verify_profile: Any = None,
) -> Dict[str, Any]:
    """One-shot helper: build a manager, run, return reports."""
    manager = PassManager(
        validate_after_each=validate,
        verify_each=verify_each,
        verify_profile=verify_profile,
    )
    for p in passes:
        manager.add(p)
    return manager.run(module)
