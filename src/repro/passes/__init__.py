"""Optimization and transformation passes (PIBE's PGO algorithms)."""

from repro.passes.default_inliner import DefaultInliner, DefaultInlineReport
from repro.passes.icp import ICPReport, IndirectCallPromotion, PromotionRecord
from repro.passes.inline_cost import (
    DEFAULT_CALLEE_THRESHOLD,
    DEFAULT_CALLER_THRESHOLD,
    STANDARD_INSTRUCTION_COST,
    InlineCostCache,
    function_cost,
    instruction_cost,
)
from repro.passes.inliner import InlineReport, PibeInliner
from repro.passes.jumptables import (
    JUMP_TABLE_MIN_CASES,
    LowerSwitches,
    SwitchLoweringReport,
)
from repro.passes.lto import (
    DCEReport,
    DeadFunctionElimination,
    SimplifyCFG,
    SimplifyCFGReport,
)
from repro.passes.manager import FunctionPass, ModulePass, PassManager, run_pipeline

__all__ = [
    "DCEReport",
    "DEFAULT_CALLEE_THRESHOLD",
    "DEFAULT_CALLER_THRESHOLD",
    "DeadFunctionElimination",
    "DefaultInlineReport",
    "DefaultInliner",
    "FunctionPass",
    "ICPReport",
    "IndirectCallPromotion",
    "InlineCostCache",
    "InlineReport",
    "JUMP_TABLE_MIN_CASES",
    "LowerSwitches",
    "ModulePass",
    "PassManager",
    "PibeInliner",
    "PromotionRecord",
    "STANDARD_INSTRUCTION_COST",
    "SimplifyCFG",
    "SimplifyCFGReport",
    "SwitchLoweringReport",
    "function_cost",
    "instruction_cost",
    "run_pipeline",
]
