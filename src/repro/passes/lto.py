"""Link-time cleanup passes: the optimization substrate PIBE's pipeline
(Section 8.1) runs alongside its own transformations.

- :class:`DeadFunctionElimination` drops functions unreachable from any
  root (syscall handlers, fptr-table entries, boot/init code) — inlining
  can fully absorb small helpers and leave their bodies dead.
- :class:`SimplifyCFG` merges trivially chained blocks left behind by
  inlining/ICP splicing (a block whose only terminator is a jump to a
  block with a single predecessor), shrinking image size like LLVM's
  simplifycfg.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.ir.callgraph import CallGraph
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import FunctionAttr, Opcode
from repro.passes.manager import ModulePass


@dataclass
class DCEReport:
    removed_functions: int = 0
    removed_instructions: int = 0


class DeadFunctionElimination(ModulePass):
    """Remove functions unreachable from the module's roots."""

    name = "dead-function-elimination"

    def run(self, module: Module) -> DCEReport:
        report = DCEReport()
        roots: List[str] = list(module.syscalls.values())
        for table in module.fptr_tables.values():
            roots.extend(table.entries)
        for func in module:
            if func.has_attr(FunctionAttr.BOOT_ONLY) or func.has_attr(
                FunctionAttr.SYSCALL_ENTRY
            ):
                roots.append(func.name)
        reachable = CallGraph(module).reachable_from(roots)
        for name in list(module.functions):
            if name not in reachable:
                report.removed_instructions += module.functions[name].size()
                del module.functions[name]
                module._cow_shared.discard(name)
                report.removed_functions += 1
        return report


@dataclass
class SimplifyCFGReport:
    merged_blocks: int = 0


class SimplifyCFG(ModulePass):
    """Merge single-predecessor jump-chained blocks."""

    name = "simplify-cfg"

    def run(self, module: Module) -> SimplifyCFGReport:
        report = SimplifyCFGReport()
        for name in list(module.functions):
            func = module.functions[name]
            if module.is_cow_shared(name):
                # Read-only precheck so untouched functions stay shared;
                # mergeable_pairs is non-empty exactly when _simplify
                # would perform at least one merge.
                if not mergeable_pairs(func):
                    continue
                func = module.mutable(name)
            report.merged_blocks += self._simplify(func)
        return report

    @staticmethod
    def _predecessor_counts(func: Function) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for block in func.blocks.values():
            for succ in set(block.successors):
                counts[succ] += 1
            term = block.terminator
            if term is not None and term.opcode == Opcode.IJUMP:
                for succ in set(term.targets):
                    counts[succ] += 1
        return counts

    def _simplify(self, func: Function) -> int:
        # A merge never changes another block's predecessor-block count: the
        # absorbing block's only successor was the absorbed block, and the
        # absorbed block's successor edges transfer to the absorber wholesale.
        # So the counts are computed once and each jump chain drained greedily
        # instead of rescanning the whole CFG after every merge.
        merged = 0
        preds = self._predecessor_counts(func)
        entry = func.entry_label
        for label in list(func.blocks):
            block = func.blocks.get(label)
            if block is None:  # already absorbed into an earlier chain
                continue
            while True:
                term = block.terminator
                if term is None or term.opcode != Opcode.JMP:
                    break
                succ_label = term.targets[0]
                if (
                    succ_label == block.label
                    or succ_label == entry
                    or preds.get(succ_label, 0) != 1
                ):
                    break
                succ = func.blocks.pop(succ_label)
                block.instructions[-1:] = succ.instructions
                merged += 1
        return merged


def mergeable_pairs(func: Function) -> Set[str]:
    """Labels of blocks that SimplifyCFG would merge away (inspection aid)."""
    preds = SimplifyCFG._predecessor_counts(func)
    result: Set[str] = set()
    for block in func.blocks.values():
        term = block.terminator
        if (
            term is not None
            and term.opcode == Opcode.JMP
            and term.targets[0] != block.label
            and preds.get(term.targets[0], 0) == 1
            and term.targets[0] != func.entry_label
        ):
            result.add(term.targets[0])
    return result
