"""Profile-guided indirect call promotion (paper Section 5.3, Listing 2).

Given value profiles on indirect call sites, the pass greedily promotes the
hottest (site, target) pairs — across the whole module, hottest first —
until the requested percentage of cumulative indirect execution weight is
covered. Unlike stock LLVM, the number of promoted targets per site is
*unlimited*: under costly instrumentation a ~2-cycle compare is far cheaper
than a ~21-cycle retpoline slow path, so more checks are never prohibitive.

Each promotion materializes the guard chain of Listing 2 in real IR::

    pre:      cmp; br eq -> direct1, next
    next:     cmp; br eq -> direct2, fallback
    direct1:  call @t1  !promoted !count=N ; jmp cont
    fallback: icall (residual targets)     ; jmp cont
    cont:     ...rest of the original block

Promoted direct calls carry edge counts and become candidates for the
inlining pass that runs after ICP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.behavior import guard_probabilities, residual_distribution
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.module import Module
from repro.ir.types import (
    ATTR_ASM_SITE,
    ATTR_EDGE_COUNT,
    ATTR_ICP_SITE,
    ATTR_P_TAKEN,
    ATTR_PROMOTED,
    ATTR_TARGETS,
    ATTR_VALUE_PROFILE,
    ATTR_VCALL,
    FunctionAttr,
    Opcode,
)
from repro.passes.manager import ModulePass


@dataclass
class PromotionRecord:
    """One transformed indirect call site."""

    site_id: int
    caller: str
    targets: Tuple[str, ...]
    promoted_weight: int
    site_weight: int


@dataclass
class PromotionDecision:
    """One planned promotion: which site gets which targets, in order."""

    site_id: int
    caller: str
    targets: List[Tuple[str, int]]


@dataclass
class ICPPlan:
    """The decision half of the pass: everything :meth:`~IndirectCallPromotion.run`
    would do to the module, expressed without touching any IR.

    Planning is a pure function of the candidate list (profile weights and
    site ids), so a plan computed against one copy-on-write clone of a
    module applies to any other clone sharing the same pre-ICP functions —
    the delta prefix engine's lever for re-planning a budget ladder without
    re-gathering anything.
    """

    budget: float
    total_weight: int = 0
    total_sites: int = 0
    total_targets: int = 0
    decisions: List[PromotionDecision] = field(default_factory=list)

    @property
    def touched_callers(self) -> frozenset:
        """Functions the apply phase will materialize and rewrite."""
        return frozenset(d.caller for d in self.decisions)


@dataclass
class ICPReport:
    """Statistics for Tables 4, 8, 10 and 11."""

    budget: float
    #: total indirect weight observed across profiled sites
    total_weight: int = 0
    #: weight covered by promoted targets
    promoted_weight: int = 0
    #: profiled indirect call sites (candidates universe)
    total_sites: int = 0
    #: sites that received at least one promotion
    promoted_sites: int = 0
    #: observed (site, target) pairs
    total_targets: int = 0
    #: promoted (site, target) pairs
    promoted_targets: int = 0
    #: static ICALL count in the module before the pass
    module_icalls_before: int = 0
    records: List[PromotionRecord] = field(default_factory=list)

    @property
    def weight_fraction(self) -> float:
        return self.promoted_weight / self.total_weight if self.total_weight else 0.0

    @property
    def site_fraction(self) -> float:
        return self.promoted_sites / self.total_sites if self.total_sites else 0.0

    @property
    def target_fraction(self) -> float:
        return (
            self.promoted_targets / self.total_targets
            if self.total_targets
            else 0.0
        )

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI)."""
        return (
            f"promoted {self.promoted_targets} targets at "
            f"{self.promoted_sites}/{self.total_sites} sites, covering "
            f"{self.weight_fraction:.1%} of indirect weight "
            f"(budget {self.budget:.6%})"
        )


class IndirectCallPromotion(ModulePass):
    """The ICP module pass.

    Parameters
    ----------
    budget:
        Fraction (0..1] of cumulative indirect execution weight to promote,
        e.g. ``0.99`` or ``0.99999`` (paper Table 3).
    max_targets_per_site:
        Optional cap for ablations; ``None`` reproduces PIBE's unlimited
        promotion (stock LLVM caps this at a small constant).
    """

    name = "indirect-call-promotion"

    def __init__(
        self, budget: float = 0.99, max_targets_per_site: Optional[int] = None
    ) -> None:
        if not 0.0 < budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {budget}")
        self.budget = budget
        self.max_targets_per_site = max_targets_per_site

    # -- candidate selection ----------------------------------------------

    def _gather_candidates(
        self, module: Module
    ) -> List[Tuple[int, int, str, str]]:
        """All profiled (count, site_id, target, caller) tuples."""
        candidates: List[Tuple[int, int, str, str]] = []
        for func in module:
            if not func.is_instrumentable:
                continue
            if func.has_attr(FunctionAttr.OPTNONE):
                continue
            for inst in func.call_sites():
                if inst.opcode != Opcode.ICALL:
                    continue
                if inst.attrs.get(ATTR_ASM_SITE):
                    continue  # inline-assembly dispatch cannot be rewritten
                profile = inst.attrs.get(ATTR_VALUE_PROFILE)
                if not profile:
                    continue
                assert inst.site_id is not None
                for target, count in profile:
                    if target in module:
                        candidates.append(
                            (count, inst.site_id, target, func.name)
                        )
        return candidates

    def _select(
        self, candidates: List[Tuple[int, int, str, str]]
    ) -> Dict[int, List[Tuple[str, int]]]:
        """Greedy hottest-first selection under the weight budget."""
        ordered = sorted(candidates, key=lambda c: (-c[0], c[1], c[2]))
        total = sum(c[0] for c in ordered)
        limit = total * self.budget
        selected: Dict[int, List[Tuple[str, int]]] = {}
        cumulative = 0
        for count, site_id, target, _caller in ordered:
            if cumulative >= limit:
                break
            per_site = selected.setdefault(site_id, [])
            if (
                self.max_targets_per_site is not None
                and len(per_site) >= self.max_targets_per_site
            ):
                # A capped-out site's remaining weight is *not* promoted,
                # so it must not consume budget either: charging it here
                # would stop the greedy loop before the promoted weight
                # actually reaches the budget fraction, starving colder
                # sites that still have room.
                continue
            per_site.append((target, count))
            cumulative += count
        return selected

    # -- decision phase ------------------------------------------------------

    def plan(
        self,
        module: Module,
        candidates: Optional[List[Tuple[int, int, str, str]]] = None,
    ) -> ICPPlan:
        """Rank and select promotions without mutating any IR.

        ``candidates`` short-circuits the module scan when the caller has
        already gathered them (the delta prefix engine gathers once per
        profile and re-plans per budget).
        """
        if candidates is None:
            candidates = self._gather_candidates(module)
        plan = ICPPlan(
            budget=self.budget,
            total_weight=sum(c[0] for c in candidates),
            total_sites=len({c[1] for c in candidates}),
            total_targets=len(candidates),
        )
        selected = self._select(candidates)
        # Candidates carry their caller, so promotion never needs the old
        # module-wide triple-nested scan per site: each site is located
        # inside its (copy-on-write-materialized) caller only.
        site_caller = {c[1]: c[3] for c in candidates}
        for site_id, targets in selected.items():
            if not targets:  # site capped out before selecting anything
                continue
            plan.decisions.append(
                PromotionDecision(
                    site_id=site_id,
                    caller=site_caller[site_id],
                    targets=list(targets),
                )
            )
        return plan

    # -- transformation ------------------------------------------------------

    def apply_plan(
        self,
        module: Module,
        plan: ICPPlan,
        icalls_before: Optional[int] = None,
    ) -> ICPReport:
        """Transform the module per ``plan`` and return the usual report.

        ``icalls_before`` skips the static ICALL census when the caller
        knows it already (it depends only on the pre-ICP module, which the
        delta engine shares across budgets).
        """
        report = ICPReport(budget=plan.budget)
        report.module_icalls_before = (
            icalls_before
            if icalls_before is not None
            else sum(1 for _ in module.indirect_call_sites())
        )
        report.total_weight = plan.total_weight
        report.total_sites = plan.total_sites
        report.total_targets = plan.total_targets
        for decision in plan.decisions:
            record = self._promote_site(
                module, decision.site_id, decision.targets, decision.caller
            )
            if record is None:
                continue
            report.records.append(record)
            report.promoted_sites += 1
            report.promoted_targets += len(record.targets)
            report.promoted_weight += record.promoted_weight
        return report

    def run(self, module: Module) -> ICPReport:
        return self.apply_plan(module, self.plan(module))

    @staticmethod
    def _locate(
        func: Function, site_id: int
    ) -> Optional[Tuple[BasicBlock, int]]:
        for block in func.blocks.values():
            for idx, inst in enumerate(block.instructions):
                if inst.site_id == site_id:
                    return block, idx
        return None

    def _promote_site(
        self,
        module: Module,
        site_id: int,
        targets: Sequence[Tuple[str, int]],
        caller: str,
    ) -> Optional[PromotionRecord]:
        if caller not in module.functions:
            return None
        func = module.mutable(caller)
        located = self._locate(func, site_id)
        if located is None:
            return None
        block, idx = located
        icall = block.instructions[idx]
        ground_truth: Dict[str, int] = icall.attrs.get(ATTR_TARGETS, {})
        is_vcall = bool(icall.attrs.get(ATTR_VCALL))
        promoted_names = [t for t, _ in targets]
        guards = guard_probabilities(
            ground_truth or {t: c for t, c in targets}, promoted_names
        )
        residual = residual_distribution(ground_truth, promoted_names)

        post = block.instructions[idx + 1 :]
        del block.instructions[idx:]

        cont_label = func.unique_label(f"icp{site_id}.cont")
        fallback_label = func.unique_label(f"icp{site_id}.fb")

        # Guard + direct-call blocks.
        guard_blocks: List[BasicBlock] = []
        direct_blocks: List[BasicBlock] = []
        labels: List[str] = []
        for i, _ in enumerate(promoted_names):
            labels.append(func.unique_label(f"icp{site_id}.g{i}"))
        for i, (target, observed_count) in enumerate(targets):
            next_label = labels[i + 1] if i + 1 < len(targets) else fallback_label
            direct_label = func.unique_label(f"icp{site_id}.d{i}")
            gblock = block if i == 0 else BasicBlock(labels[i])
            if i == 0 and is_vcall:
                gblock.instructions.append(Instruction(Opcode.LOAD))
            gblock.instructions.append(Instruction(Opcode.CMP))
            gblock.instructions.append(
                Instruction(
                    Opcode.BR,
                    targets=(direct_label, next_label),
                    attrs={ATTR_P_TAKEN: guards[i][1]},
                )
            )
            if i > 0:
                guard_blocks.append(gblock)
            dblock = BasicBlock(direct_label)
            dblock.instructions.append(
                Instruction(
                    Opcode.CALL,
                    callee=target,
                    num_args=icall.num_args,
                    attrs={
                        ATTR_PROMOTED: True,
                        ATTR_EDGE_COUNT: observed_count,
                        ATTR_ICP_SITE: site_id,
                    },
                )
            )
            dblock.instructions.append(
                Instruction(Opcode.JMP, targets=(cont_label,))
            )
            direct_blocks.append(dblock)

        # Fallback: the original indirect call with the residual distribution.
        fallback = icall.clone(fresh_site_id=False)
        fallback.attrs.pop(ATTR_VALUE_PROFILE, None)
        fallback.attrs[ATTR_ICP_SITE] = site_id
        # The fallback must never carry an empty distribution: executing
        # an ICALL with no targets raises in target selection. With an
        # empty residual the fallback is unreachable (the last guard's
        # conditional probability is 1.0), so carry the best distribution
        # available — the ground truth, or, when the site has no ground
        # truth at all, the promoted profile itself.
        fallback.attrs[ATTR_TARGETS] = (
            residual or dict(ground_truth) or {t: c for t, c in targets}
        )
        fblock = BasicBlock(fallback_label)
        fblock.instructions.append(fallback)
        fblock.instructions.append(
            Instruction(Opcode.JMP, targets=(cont_label,))
        )

        cont = BasicBlock(cont_label, post)

        for new_block in guard_blocks + direct_blocks + [fblock, cont]:
            func.add_block(new_block)

        return PromotionRecord(
            site_id=site_id,
            caller=func.name,
            targets=tuple(promoted_names),
            promoted_weight=sum(c for _, c in targets),
            site_weight=sum(c for _, c in targets)
            + sum(residual.values()),
        )
