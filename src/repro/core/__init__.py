"""PIBE's public driver API."""

from repro.core.config import PibeConfig
from repro.core.pipeline import BuildResult, PibePipeline
from repro.core.report import (
    OverheadReport,
    OverheadRow,
    build_overhead_report,
    format_percent,
    geomean_overhead,
    geomean_ratio,
    overhead,
)

__all__ = [
    "BuildResult",
    "OverheadReport",
    "OverheadRow",
    "PibeConfig",
    "PibePipeline",
    "build_overhead_report",
    "format_percent",
    "geomean_overhead",
    "geomean_ratio",
    "overhead",
]
