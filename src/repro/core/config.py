"""PIBE build configuration: which defenses to enforce and how aggressively
to eliminate indirect branches first (paper Sections 4–5, 8.3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hardening.defenses import DefenseConfig

#: The paper's Rule 2 / Rule 3 thresholds (12,000 / 3,000 InlineCost units)
#: assume Linux-sized functions — hundreds of instructions each. The
#: synthetic kernel's functions are roughly 6x smaller, so the default
#: thresholds here scale down accordingly (calibrated so Rule 3 blocks
#: ~3% of eligible weight, matching the paper's Table 9); pass the paper
#: values explicitly to study the un-scaled behaviour.
KERNEL_CALLER_THRESHOLD = 2_000
KERNEL_CALLEE_THRESHOLD = 450


@dataclass(frozen=True)
class PibeConfig:
    """One kernel build variant.

    ``icp_budget`` / ``inline_budget`` are the optimization budgets of
    Section 5 (fractions of cumulative execution weight, e.g. ``0.999``);
    ``None`` disables the corresponding elimination pass. The paper's
    headline "lax heuristics" configuration is
    ``PibeConfig.lax(DefenseConfig.all_defenses())``.
    """

    defenses: DefenseConfig = field(default_factory=DefenseConfig.none)
    icp_budget: Optional[float] = None
    inline_budget: Optional[float] = None
    lax_heuristics: bool = False
    caller_threshold: int = KERNEL_CALLER_THRESHOLD
    callee_threshold: int = KERNEL_CALLEE_THRESHOLD
    #: Use LLVM's bottom-up inliner instead of PIBE's (Section 8.4 baseline).
    use_default_inliner: bool = False
    #: Drop functions made unreachable by inlining.
    run_dce: bool = True

    # -- named configurations --------------------------------------------------

    @classmethod
    def lto_baseline(cls) -> "PibeConfig":
        """Vanilla kernel: LTO pipeline, no PGO, no defenses (Section 8.1)."""
        return cls()

    @classmethod
    def pibe_baseline(cls) -> "PibeConfig":
        """PGO-optimized kernel without defenses (the 'PIBE baseline')."""
        return cls(icp_budget=0.99999, inline_budget=0.999999, lax_heuristics=True)

    @classmethod
    def hardened(
        cls,
        defenses: DefenseConfig,
        icp_budget: Optional[float] = None,
        inline_budget: Optional[float] = None,
        lax_heuristics: bool = False,
    ) -> "PibeConfig":
        return cls(
            defenses=defenses,
            icp_budget=icp_budget,
            inline_budget=inline_budget,
            lax_heuristics=lax_heuristics,
        )

    @classmethod
    def lax(cls, defenses: DefenseConfig) -> "PibeConfig":
        """The paper's optimal configuration: 99.9999% budgets with size
        heuristics disabled for sites inside the 99% budget (Section 8.3)."""
        return cls(
            defenses=defenses,
            icp_budget=0.999999,
            inline_budget=0.999999,
            lax_heuristics=True,
        )

    def label(self) -> str:
        def fmt(budget: float) -> str:
            return f"{budget * 100:.6f}".rstrip("0").rstrip(".") + "%"

        parts = [self.defenses.label()]
        if self.icp_budget is not None:
            parts.append(f"icp={fmt(self.icp_budget)}")
        if self.inline_budget is not None:
            parts.append(f"inline={fmt(self.inline_budget)}")
        if self.lax_heuristics:
            parts.append("lax")
        if self.use_default_inliner:
            parts.append("default-inliner")
        return " ".join(parts)

    @property
    def optimized(self) -> bool:
        return self.icp_budget is not None or self.inline_budget is not None
