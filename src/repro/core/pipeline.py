"""The PIBE two-phase driver (paper Section 4).

Phase 1 (:meth:`PibePipeline.profile`): run a representative workload on a
profiling build and collect edge execution counts.

Phase 2 (:meth:`PibePipeline.build_variant`): on a fresh copy of the
linked module, lift the profile onto the IR, eliminate the hottest
indirect branches (ICP, then the security-driven inliner), clean up, and
harden every remaining indirect branch with the requested defenses.

Phase 2 is *staged*: everything up to hardening — lowering, profile
lifting, ICP, inlining, CFG cleanup, DCE — depends only on the baseline,
the profile, and the optimization facets of the config (budgets,
thresholds, jump-table legality), not on which defenses get stamped on
top. That shared **optimized prefix** is built once per distinct
:class:`PrefixKey`, memoized in memory and (when the pipeline has a
:class:`~repro.evaluation.cache.DiskCache`) persisted to disk via the
exact IR codec, and every variant at the same budget is produced by
stamping the hardening pass onto a copy-on-write clone of the cached
prefix. A defense sweep at one budget runs ICP + inlining once instead
of once per defense combination.

Prefixes for *optimized* keys are themselves built **incrementally**
(paper Section 4's "one profile, many budgets" workflow): ICP and the
inliners split into a decision phase — ranked against the profile and
budget over a :class:`~repro.passes.decisions.VirtualSpace`, no IR
mutation — and an apply phase that replays the decisions onto a
copy-on-write clone of a shared per-profile *decision basis* (the
lifted + switch-lowered module). Only functions the decisions touch are
materialized; everything else is shared with the basis (and hence with
every neighboring budget's prefix), and per-function SimplifyCFG results
and validation are cached on the basis. The replay mints global ids in
the exact order a cold monolithic build would, so delta-derived prefixes
are bit-identical to cold ones (pinned by the differential and property
tests). On disk, prefixes persist as a header plus content-addressed
function-group chunks, so warm loads decode each shared group once per
process no matter how many budget entries reference it.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import PibeConfig
from repro.hardening.harden import HardenReport, HardeningPass
from repro.ir.clone import (
    clone_function_exact,
    clone_module,
    inline_serial_checkpoint,
)
from repro.ir.fingerprint import module_fingerprint
from repro.ir.function import Function
from repro.ir.instruction import reserve_site_ids, site_id_checkpoint
from repro.ir.module import Module
from repro.ir.serialize import (
    functions_from_chunk,
    functions_to_chunk,
    module_from_header,
    module_header_to_dict,
)
from repro.ir.validate import (
    ValidationError,
    validate_function,
    validate_module,
)
from repro.passes.decisions import (
    FunctionSeed,
    VirtualSpace,
    seed_function,
)
from repro.passes.default_inliner import DefaultInliner, DefaultInlineReport
from repro.passes.icp import ICPReport, IndirectCallPromotion, PromotionRecord
from repro.passes.inline_cost import InlineCostCache
from repro.passes.inliner import InlineReport, PibeInliner
from repro.passes.jumptables import LowerSwitches, SwitchLoweringReport
from repro.passes.lto import (
    DCEReport,
    DeadFunctionElimination,
    SimplifyCFG,
    SimplifyCFGReport,
    mergeable_pairs,
)
from repro.passes.manager import ModulePass, PassManager
from repro.engine.compiled import DEFAULT_ENGINE
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.base import Workload, profile_workload

#: Bump to invalidate persisted prefix entries when pass behaviour changes.
#: v2: chunked header + content-addressed function-group layout.
PREFIX_CACHE_VERSION = "prefix-v2"

#: Functions per persisted prefix chunk. Windows are carved over the
#: *sorted baseline* namespace so adjacent budgets emit identical chunks
#: for every window no decision touched (content-addressed dedup).
PREFIX_CHUNK_SIZE = 64


def _function_call_targets(func: Function) -> Tuple[str, ...]:
    """The function's outgoing call-graph targets: direct callees plus
    every indirect site's ground-truth target set — exactly the edges
    :class:`~repro.ir.callgraph.CallGraph` derives for it."""
    from repro.ir.types import ATTR_TARGETS, Opcode

    targets: List[str] = []
    for inst in func.call_sites():
        if inst.opcode == Opcode.CALL:
            if inst.callee is not None:
                targets.append(inst.callee)
        else:
            targets.extend(inst.attrs.get(ATTR_TARGETS, ()))
    return tuple(targets)


def _module_dict_sha(module_dict: Dict[str, Any]) -> str:
    """Content hash of a serialized module dict.

    Computed over the plain ``json.dumps`` text (no ``sort_keys`` — see
    :mod:`repro.ir.serialize` on order sensitivity), which round-trips
    byte-identically through ``json.load``, so the hash taken before
    :meth:`DiskCache.put` and the one recomputed on the loaded payload
    agree exactly when the entry is intact.
    """
    text = json.dumps(module_dict)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@contextlib.contextmanager
def deterministic_build_ids():
    """Snapshot/restore every global id the build engine mints (call-site
    ids, inline label serials) around a block.

    Two builds wrapped in separate ``deterministic_build_ids()`` blocks
    allocate identical ids, making their output directly comparable —
    the staged-vs-monolithic differential tests' backbone. The caveat of
    :func:`repro.ir.instruction.site_id_checkpoint` applies: modules from
    different checkpoints reuse ids, so never mix them under one profile.
    """
    with site_id_checkpoint(), inline_serial_checkpoint():
        yield


@dataclass
class BuildResult:
    """A built kernel variant plus per-pass reports."""

    config: PibeConfig
    module: Module
    reports: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.config.label()


@dataclass(frozen=True)
class PrefixKey:
    """The optimization facets of a :class:`PibeConfig` — everything the
    optimized prefix depends on, and nothing it doesn't.

    Two configs with equal keys (and the same profile) share one prefix;
    notably the defense *selection* is absent — only its side effect on
    jump-table legality participates, because ``LowerSwitches`` runs
    inside the prefix.
    """

    allow_jump_tables: bool
    icp_budget: Optional[float]
    inline_budget: Optional[float]
    lax_heuristics: bool
    caller_threshold: int
    callee_threshold: int
    use_default_inliner: bool
    run_dce: bool

    @classmethod
    def from_config(cls, config: PibeConfig) -> "PrefixKey":
        optimized = config.optimized
        return cls(
            allow_jump_tables=not config.defenses.disables_jump_tables,
            icp_budget=config.icp_budget if optimized else None,
            inline_budget=config.inline_budget if optimized else None,
            lax_heuristics=config.lax_heuristics if optimized else False,
            caller_threshold=config.caller_threshold,
            callee_threshold=config.callee_threshold,
            use_default_inliner=(
                config.use_default_inliner if optimized else False
            ),
            run_dce=config.run_dce,
        )


@dataclass
class PrefixEntry:
    """One cached optimized prefix.

    ``module`` is treated as immutable once cached: variants are stamped
    on copy-on-write clones of it, never on the entry itself. It is
    validated once, when built (or, for disk entries, implied by the
    fingerprint matching a validated build) — stamped variants skip
    re-validation because hardening only annotates instructions.
    """

    module: Module
    reports: Dict[str, Any]
    #: provenance of this entry: "built" | "memory" | "disk"
    source: str = "built"
    #: site-sensitive fingerprint, computed lazily (only persistence and
    #: disk-load verification need it)
    _fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = module_fingerprint(
                self.module, include_sites=True
            )
        return self._fingerprint


class _DecisionBasis:
    """Per-(profile, jump-table legality) shared state for delta builds.

    Holds the lifted + switch-lowered copy-on-write clone of the baseline
    that every budget's decision/apply run clones from, plus everything
    that depends only on it: the lowering report, ICP's candidate list,
    the pre-ICP static ICALL census, per-function decision seeds,
    per-function SimplifyCFG results for functions no decision touched,
    and the names whose (shared) post-simplify bodies already passed
    validation. The module is immutable after construction — deltas only
    ever read it or COW-clone it.
    """

    def __init__(self, module: Module, lower_report: Any) -> None:
        self.module = module
        self.lower_report = lower_report
        self.validated: set = set()
        self._candidates: Optional[List[Tuple[int, int, str, str]]] = None
        self._icalls_before: Optional[int] = None
        self._seeds: Dict[str, FunctionSeed] = {}
        self._simplified: Dict[str, Tuple[Optional[Function], int]] = {}
        self._call_targets: Dict[str, Tuple[str, ...]] = {}

    def icp_candidates(
        self, icp: IndirectCallPromotion
    ) -> List[Tuple[int, int, str, str]]:
        if self._candidates is None:
            self._candidates = icp._gather_candidates(self.module)
        return self._candidates

    def icalls_before(self) -> int:
        if self._icalls_before is None:
            self._icalls_before = sum(
                1 for _ in self.module.indirect_call_sites()
            )
        return self._icalls_before

    def seed(self, name: str) -> FunctionSeed:
        seed = self._seeds.get(name)
        if seed is None:
            seed = seed_function(self.module.functions[name])
            self._seeds[name] = seed
        return seed

    def simplified(self, name: str) -> Tuple[Optional[Function], int]:
        """SimplifyCFG's result for an untouched function: ``(None, 0)``
        when it has nothing to merge, else a shared simplified clone plus
        its merge count (computed once, reused by every delta)."""
        cached = self._simplified.get(name)
        if cached is None:
            func = self.module.functions[name]
            if mergeable_pairs(func):
                clone = clone_function_exact(func)
                cached = (clone, SimplifyCFG()._simplify(clone))
            else:
                cached = (None, 0)
            self._simplified[name] = cached
        return cached

    def call_targets(self, name: str) -> Tuple[str, ...]:
        """Outgoing call-graph targets of an untouched function, scanned
        once on the basis body and reused by every delta's DCE: shared
        functions are never rewritten by ICP or inlining, and SimplifyCFG
        block merges never add or drop call instructions, so the basis
        edges stay exact for every budget's shared copy."""
        cached = self._call_targets.get(name)
        if cached is None:
            cached = _function_call_targets(self.module.functions[name])
            self._call_targets[name] = cached
        return cached


# -- pass-report (de)serialization ------------------------------------------------
#
# Prefix entries persist their pass reports next to the module so a
# disk-warm build returns the same BuildResult.reports a cold one does.
# Reports are flat dataclasses; the one nested structure (ICP's promotion
# records) is rebuilt explicitly.

_REPORT_CLASSES = {
    cls.__name__: cls
    for cls in (
        SwitchLoweringReport,
        ICPReport,
        InlineReport,
        DefaultInlineReport,
        SimplifyCFGReport,
        DCEReport,
        HardenReport,
    )
}


def encode_report(report: Any) -> Dict[str, Any]:
    """Render one pass report as JSON-encodable data."""
    cls_name = type(report).__name__
    if cls_name not in _REPORT_CLASSES:
        raise TypeError(f"unknown report type {cls_name}")
    return {"__report__": cls_name, "data": dataclasses.asdict(report)}


def decode_report(payload: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_report`."""
    cls = _REPORT_CLASSES[payload["__report__"]]
    data = dict(payload["data"])
    if cls is ICPReport:
        data["records"] = [
            PromotionRecord(
                site_id=r["site_id"],
                caller=r["caller"],
                targets=tuple(r["targets"]),
                promoted_weight=r["promoted_weight"],
                site_weight=r["site_weight"],
            )
            for r in data.get("records", ())
        ]
    return cls(**data)


class PibePipeline:
    """Profile-then-optimize driver over a linked baseline module.

    The baseline module is never mutated: every variant is built on a deep
    copy, so one profile feeds arbitrarily many configurations (the
    evaluation sweeps budgets and defense combinations from a single
    profiling run, like the paper's workflow scripts).

    Parameters
    ----------
    baseline:
        The linked module every variant starts from. Must stay immutable
        for the pipeline's lifetime (copy-on-write clones share its
        functions).
    cache:
        Optional :class:`~repro.evaluation.cache.DiskCache`; when given,
        optimized prefixes persist under the ``"prefix"`` kind (header)
        and ``"prefix-chunk"`` kind (content-addressed function groups)
        so other processes (parallel evaluation workers, later runs)
        skip the ICP + inlining work entirely.
    incremental:
        Build optimized prefixes through the delta decision/apply engine
        (share a per-profile basis across budgets, transform only touched
        functions). ``False`` forces every prefix through the monolithic
        cold pass run — the benchmark baseline arm; output is
        bit-identical either way.
    """

    def __init__(
        self,
        baseline: Module,
        cache: Optional[Any] = None,
        incremental: bool = True,
    ) -> None:
        validate_module(baseline)
        self.baseline = baseline
        self.cache = cache
        self.incremental = incremental
        self._baseline_fp: Optional[str] = None
        self._prefix_memo: Dict[Any, PrefixEntry] = {}
        self._basis_memo: Dict[Tuple[str, bool], _DecisionBasis] = {}
        #: decoded prefix chunks by content sha — shared across entries so
        #: a warm budget ladder decodes each untouched group once.
        self._chunk_memo: Dict[str, Tuple[Dict[str, Function], int]] = {}
        #: serialized-chunk shas keyed by the window's function-object
        #: identities — a delta ladder shares its untouched windows as
        #: the very same objects, so each serializes once per process.
        #: The value pins the objects so a recycled id can never alias.
        self._chunk_sha_memo: Dict[
            Tuple[Tuple[str, ...], Tuple[int, ...]],
            Tuple[str, List[Function]],
        ] = {}
        #: per-function serialized dicts by object identity, shared
        #: across chunk groupings (two budgets that carve the same
        #: function into different windows still serialize it once);
        #: ``_serialized_pins`` keeps every memoized object alive so a
        #: recycled id can never alias.
        self._func_dict_memo: Dict[int, Dict[str, Any]] = {}
        self._serialized_pins: Dict[int, Function] = {}
        self._baseline_windows_memo: Optional[List[List[str]]] = None
        #: build-engine counters (surfaced by benchmarks and ``repro
        #: cache stats``)
        self.stats: Dict[str, int] = {
            "staged_builds": 0,
            "monolithic_builds": 0,
            "prefix_builds": 0,
            "prefix_delta_builds": 0,
            "prefix_memory_hits": 0,
            "prefix_disk_hits": 0,
            "prefix_decode_failures": 0,
            "prefix_chunks_decoded": 0,
            "prefix_chunks_reused": 0,
        }

    def _baseline_fingerprint(self) -> str:
        if self._baseline_fp is None:
            self._baseline_fp = module_fingerprint(
                self.baseline, include_sites=True
            )
        return self._baseline_fp

    def prefix_cache_info(self) -> Dict[str, Any]:
        """Snapshot of the in-memory prefix cache for stats surfaces.

        Deterministically ordered (sorted keys throughout) so the serve
        ``stats`` endpoint and its tests can compare rendered JSON.
        """
        by_source: Dict[str, int] = {}
        # Delta prefixes (and chunk-sharing disk loads) share most
        # Function objects across entries; count unique objects, not
        # per-entry sums, so the figure reflects actual residency.
        unique_functions: set = set()
        for entry in self._prefix_memo.values():
            by_source[entry.source] = by_source.get(entry.source, 0) + 1
            unique_functions.update(
                id(func) for func in entry.module.functions.values()
            )
        return {
            "entries": len(self._prefix_memo),
            "by_source": {k: by_source[k] for k in sorted(by_source)},
            "resident_functions": len(unique_functions),
            "counters": {k: self.stats[k] for k in sorted(self.stats)},
        }

    # -- phase 1: profiling -----------------------------------------------------

    def profile(
        self,
        workload: Workload,
        iterations: int = 11,
        ops_scale: float = 1.0,
        seed: int = 3,
        engine: str = DEFAULT_ENGINE,
    ) -> EdgeProfile:
        """Run the profiling build and return merged edge counts."""
        profiling_build = clone_module(self.baseline)
        return profile_workload(
            profiling_build,
            workload,
            iterations=iterations,
            seed=seed,
            ops_scale=ops_scale,
            engine=engine,
        )

    # -- phase 2: optimization + hardening ----------------------------------------

    def build_variant(
        self,
        config: PibeConfig,
        profile: Optional[EdgeProfile] = None,
        validate: bool = False,
        verify_each: bool = False,
        staged: Optional[bool] = None,
    ) -> BuildResult:
        """Produce one kernel variant.

        ``profile`` is required whenever the config enables ICP or
        inlining. ``validate`` re-verifies the module after every pass
        (slower; on for tests, off for benchmark sweeps). ``verify_each``
        additionally runs the full static-analysis rule set at every pass
        boundary, raising on error-severity findings.

        ``staged`` selects the build engine: ``True`` stamps hardening
        onto the shared optimized prefix (bit-identical output, one ICP +
        inlining run per budget instead of per variant), ``False`` runs
        the monolithic pass list from a fresh baseline clone. The default
        stages whenever neither ``validate`` nor ``verify_each`` is set —
        pass-boundary verification needs every pass to actually run.
        """
        if config.optimized and profile is None:
            raise ValueError(
                f"config {config.label()!r} needs a profile for its "
                "optimization budgets"
            )
        if staged is None:
            staged = not (validate or verify_each)
        if staged and not (validate or verify_each):
            return self._build_staged(config, profile)
        self.stats["monolithic_builds"] += 1
        module = clone_module(self.baseline)

        passes: List[ModulePass] = [
            LowerSwitches(
                allow_jump_tables=not config.defenses.disables_jump_tables
            )
        ]
        if profile is not None and config.optimized:
            lift_profile(module, profile)
            self._add_optimization_passes(passes, config, profile)
        if config.run_dce:
            passes.append(DeadFunctionElimination())
        passes.append(HardeningPass(config.defenses))

        manager = PassManager(
            validate_after_each=validate,
            verify_each=verify_each,
            verify_profile=profile,
        )
        for pass_ in passes:
            manager.add(pass_)
        reports = manager.run(module)
        if not validate:
            validate_module(module)
        return BuildResult(config=config, module=module, reports=reports)

    @staticmethod
    def _add_optimization_passes(
        passes: List[ModulePass], config: PibeConfig, profile: EdgeProfile
    ) -> None:
        """Append the ICP / inline / cleanup passes for an optimized config
        (identical list for the monolithic path and the prefix build)."""
        if config.icp_budget is not None:
            passes.append(IndirectCallPromotion(budget=config.icp_budget))
        if config.inline_budget is not None:
            # One cost cache serves the whole build; the inliner keeps it
            # exact incrementally instead of invalidating per splice.
            costs = InlineCostCache()
            if config.use_default_inliner:
                passes.append(DefaultInliner(profile=profile, costs=costs))
            else:
                passes.append(
                    PibeInliner(
                        profile,
                        budget=config.inline_budget,
                        caller_threshold=config.caller_threshold,
                        callee_threshold=config.callee_threshold,
                        lax_heuristics=config.lax_heuristics,
                        costs=costs,
                    )
                )
        passes.append(SimplifyCFG())

    # -- staged engine ---------------------------------------------------------

    def _build_staged(
        self, config: PibeConfig, profile: Optional[EdgeProfile]
    ) -> BuildResult:
        """Stamp ``config``'s defenses onto the shared optimized prefix."""
        self.stats["staged_builds"] += 1
        prefix = self._optimized_prefix(config, profile)
        module = clone_module(prefix.module, cow=True)
        manager = PassManager(validate_after_each=False)
        manager.add(HardeningPass(config.defenses))
        harden_reports = manager.run(module)
        # No per-variant validate_module: the prefix was validated when
        # built, and hardening only sets instruction/module attributes —
        # it cannot change the structure validation checks.
        # Prefix reports are shared by every variant stamped from the
        # entry; hand each BuildResult its own copy so downstream
        # consumers can annotate them freely.
        reports = copy.deepcopy(prefix.reports)
        reports.update(harden_reports)
        return BuildResult(config=config, module=module, reports=reports)

    def _optimized_prefix(
        self, config: PibeConfig, profile: Optional[EdgeProfile]
    ) -> PrefixEntry:
        """The shared pre-hardening module for ``config``'s optimization
        facets: from the in-memory memo, else the disk cache, else built."""
        key = PrefixKey.from_config(config)
        digest = (
            profile.digest()
            if profile is not None and config.optimized
            else None
        )
        memo_key: Tuple[Optional[str], PrefixKey] = (digest, key)
        entry = self._prefix_memo.get(memo_key)
        if entry is not None:
            self.stats["prefix_memory_hits"] += 1
            return entry

        disk_key: Optional[str] = None
        if self.cache is not None:
            from repro.evaluation.cache import cache_key

            disk_key = cache_key(
                "prefix",
                PREFIX_CACHE_VERSION,
                self._baseline_fingerprint(),
                digest,
                key,
            )
            payload = self.cache.get("prefix", disk_key)
            if payload is not None:
                entry = self._prefix_from_payload(payload, disk_key)
                if entry is not None:
                    self.stats["prefix_disk_hits"] += 1
                    self._prefix_memo[memo_key] = entry
                    return entry

        entry = self._build_prefix(config, profile, key)
        self.stats["prefix_builds"] += 1
        self._prefix_memo[memo_key] = entry
        if self.cache is not None and disk_key is not None:
            self._persist_prefix(disk_key, entry)
        return entry

    def warm_prefix(
        self, config: PibeConfig, profile: Optional[EdgeProfile]
    ) -> None:
        """Build (or load) and persist the optimized prefix for ``config``
        without stamping a variant — the parallel-prewarm entry point."""
        if not config.optimized:
            return
        self._optimized_prefix(config, profile)

    def prefix_state(
        self, config: PibeConfig, profile: Optional[EdgeProfile]
    ) -> str:
        """Where ``config``'s prefix currently resides: ``"memory"``,
        ``"disk"`` or ``"cold"`` (prewarm planning; no side effects)."""
        key = PrefixKey.from_config(config)
        digest = (
            profile.digest()
            if profile is not None and config.optimized
            else None
        )
        if (digest, key) in self._prefix_memo:
            return "memory"
        if self.cache is not None:
            from repro.evaluation.cache import cache_key

            disk_key = cache_key(
                "prefix",
                PREFIX_CACHE_VERSION,
                self._baseline_fingerprint(),
                digest,
                key,
            )
            if self.cache.has("prefix", disk_key):
                return "disk"
        return "cold"

    def _build_prefix(
        self,
        config: PibeConfig,
        profile: Optional[EdgeProfile],
        key: PrefixKey,
    ) -> PrefixEntry:
        """Build one optimized prefix, via the delta engine when possible."""
        if self.incremental and profile is not None and config.optimized:
            return self._build_prefix_incremental(profile, key)
        return self._build_prefix_cold(config, profile, key)

    # -- delta engine ------------------------------------------------------------

    def _decision_basis(
        self, profile: EdgeProfile, allow_jump_tables: bool
    ) -> _DecisionBasis:
        basis_key = (profile.digest(), allow_jump_tables)
        basis = self._basis_memo.get(basis_key)
        if basis is None:
            # Exactly the cold path's pre-decision steps, in cold order:
            # COW clone, lift the profile, lower switches. None of them
            # mint global ids, so the basis is allocator-neutral and the
            # replay below stays bit-identical to a cold build.
            module = clone_module(self.baseline, cow=True)
            lift_profile(module, profile)
            lower_report = LowerSwitches(
                allow_jump_tables=allow_jump_tables
            ).run(module)
            basis = _DecisionBasis(module, lower_report)
            self._basis_memo[basis_key] = basis
        return basis

    def _build_prefix_incremental(
        self, profile: EdgeProfile, key: PrefixKey
    ) -> PrefixEntry:
        """Decision/apply build of one optimized prefix from the shared
        per-profile basis, transforming only functions the decisions touch.

        The pass sequence (and the reports dict's insertion order) mirrors
        the cold monolithic prefix run exactly: lower, ICP, inliner,
        SimplifyCFG, DCE. Decisions are planned against seeds / a
        :class:`VirtualSpace` (no IR mutation), then replayed onto a COW
        clone of the basis in decided order, so id minting matches a cold
        build step for step.
        """
        self.stats["prefix_delta_builds"] += 1
        basis = self._decision_basis(profile, key.allow_jump_tables)
        module = clone_module(basis.module, cow=True)
        reports: Dict[str, Any] = {
            LowerSwitches.name: copy.deepcopy(basis.lower_report)
        }

        icp_touched: set = set()
        if key.icp_budget is not None:
            icp = IndirectCallPromotion(budget=key.icp_budget)
            icp_plan = icp.plan(
                module, candidates=basis.icp_candidates(icp)
            )
            reports[IndirectCallPromotion.name] = icp.apply_plan(
                module, icp_plan, icalls_before=basis.icalls_before()
            )
            icp_touched = {
                name
                for name in module.functions
                if not module.is_cow_shared(name)
            }

        if key.inline_budget is not None:

            def seed_for(name: str) -> FunctionSeed:
                # ICP rewrote these callers, so their basis seeds are
                # stale; everything else is byte-for-byte basis state.
                if name in icp_touched:
                    return seed_function(module.functions[name])
                return basis.seed(name)

            space = VirtualSpace(list(module.functions), seed_for)
            if key.use_default_inliner:
                default_inliner = DefaultInliner(profile=profile)
                inline_plan = default_inliner.plan(module, space)
                reports[DefaultInliner.name] = default_inliner.apply_plan(
                    module, inline_plan
                )
            else:
                inliner = PibeInliner(
                    profile,
                    budget=key.inline_budget,
                    caller_threshold=key.caller_threshold,
                    callee_threshold=key.callee_threshold,
                    lax_heuristics=key.lax_heuristics,
                )
                inline_plan = inliner.plan(space)
                reports[PibeInliner.name] = inliner.apply_plan(
                    module, inline_plan
                )

        # SimplifyCFG: touched functions get a direct in-place pass;
        # untouched ones reuse the basis's per-function result (a shared
        # simplified clone, or nothing to merge). Replacing the mapping
        # while leaving the name COW-shared is safe — the shared clone is
        # never mutated, and any later mutable() clones it first.
        simplifier = SimplifyCFG()
        simplify_report = SimplifyCFGReport()
        for name in list(module.functions):
            if module.is_cow_shared(name):
                shared_clone, merges = basis.simplified(name)
                if shared_clone is not None:
                    module.functions[name] = shared_clone
                    simplify_report.merged_blocks += merges
            else:
                simplify_report.merged_blocks += simplifier._simplify(
                    module.functions[name]
                )
        reports[SimplifyCFG.name] = simplify_report

        if key.run_dce:
            reports[DeadFunctionElimination.name] = self._dce_incremental(
                module, basis
            )

        # Validation: touched functions always; untouched (shared) bodies
        # once per basis — every delta sees the same objects.
        from repro.static.rules.structural import STRUCTURAL

        errors: List[str] = []
        for name, func in module.functions.items():
            if module.is_cow_shared(name):
                if name in basis.validated:
                    continue
                basis.validated.add(name)
            errors.extend(validate_function(func, module))
        errors.extend(
            d.legacy_message() for d in STRUCTURAL.module_diagnostics(module)
        )
        if errors:
            raise ValidationError(errors)
        return PrefixEntry(module=module, reports=reports, source="built")

    def _dce_incremental(
        self, module: Module, basis: _DecisionBasis
    ) -> DCEReport:
        """:class:`DeadFunctionElimination` without the per-build call
        graph: shared functions reuse edge lists cached on the basis, so
        each delta only scans the functions its decisions touched. Same
        roots, same reachability, same removal order — the report and the
        surviving module are bit-identical to the monolithic pass.
        """
        from repro.ir.types import FunctionAttr

        report = DCEReport()
        roots: List[str] = list(module.syscalls.values())
        for table in module.fptr_tables.values():
            roots.extend(table.entries)
        for func in module:
            if func.has_attr(FunctionAttr.BOOT_ONLY) or func.has_attr(
                FunctionAttr.SYSCALL_ENTRY
            ):
                roots.append(func.name)
        seen: set = set()
        stack = [r for r in roots if r in module.functions]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            targets = (
                basis.call_targets(name)
                if module.is_cow_shared(name)
                else _function_call_targets(module.functions[name])
            )
            for target in targets:
                if target not in seen and target in module.functions:
                    stack.append(target)
        for name in list(module.functions):
            if name not in seen:
                report.removed_instructions += module.functions[name].size()
                del module.functions[name]
                module._cow_shared.discard(name)
                report.removed_functions += 1
        return report

    def _build_prefix_cold(
        self,
        config: PibeConfig,
        profile: Optional[EdgeProfile],
        key: PrefixKey,
    ) -> PrefixEntry:
        """Run the pre-hardening pass list once, on a COW baseline clone."""
        module = clone_module(self.baseline, cow=True)
        passes: List[ModulePass] = [
            LowerSwitches(allow_jump_tables=key.allow_jump_tables)
        ]
        if profile is not None and config.optimized:
            lift_profile(module, profile)
            self._add_optimization_passes(passes, config, profile)
        if key.run_dce:
            passes.append(DeadFunctionElimination())
        manager = PassManager(validate_after_each=False)
        for pass_ in passes:
            manager.add(pass_)
        reports = manager.run(module)
        validate_module(module)
        return PrefixEntry(module=module, reports=reports, source="built")

    # -- chunked prefix persistence ---------------------------------------------

    def _baseline_windows(self) -> List[List[str]]:
        """Sorted-baseline-name windows of :data:`PREFIX_CHUNK_SIZE`.

        Every prefix's functions are a subset of the baseline's, so
        carving groups from this fixed partition makes two budgets' chunks
        identical for every window neither touched.
        """
        if self._baseline_windows_memo is None:
            names = sorted(self.baseline.functions)
            self._baseline_windows_memo = [
                names[i : i + PREFIX_CHUNK_SIZE]
                for i in range(0, len(names), PREFIX_CHUNK_SIZE)
            ]
        return self._baseline_windows_memo

    def _prefix_groups(self, module: Module) -> List[List[str]]:
        shared = {
            name
            for name in module.functions
            if module.is_cow_shared(name)
        }
        groups: List[List[str]] = []
        for window in self._baseline_windows():
            names = [n for n in window if n in shared]
            if names:
                groups.append(names)
        owned = sorted(n for n in module.functions if n not in shared)
        for i in range(0, len(owned), PREFIX_CHUNK_SIZE):
            groups.append(owned[i : i + PREFIX_CHUNK_SIZE])
        return groups

    @staticmethod
    def _chunk_key(sha: str) -> str:
        from repro.evaluation.cache import cache_key

        return cache_key("prefix-chunk", PREFIX_CACHE_VERSION, sha)

    def _persist_prefix(self, disk_key: str, entry: PrefixEntry) -> None:
        """Write ``entry`` as a header plus content-addressed chunks.

        Chunks are keyed by the sha of their serialized payload, so a
        group shared between two budget entries is stored once; ``has``
        skips even the re-serialization for groups already on disk from
        this or any other process.
        """
        try:
            header = module_header_to_dict(entry.module)
            groups: List[Dict[str, Any]] = []
            for names in self._prefix_groups(entry.module):
                funcs = [entry.module.functions[n] for n in names]
                memo_key = (tuple(names), tuple(map(id, funcs)))
                memo = self._chunk_sha_memo.get(memo_key)
                if memo is None:
                    for func in funcs:
                        self._serialized_pins.setdefault(id(func), func)
                    chunk = functions_to_chunk(
                        funcs, dict_memo=self._func_dict_memo
                    )
                    text = json.dumps(chunk)
                    sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
                    chunk_key = self._chunk_key(sha)
                    if not self.cache.has("prefix-chunk", chunk_key):
                        self.cache.put(
                            "prefix-chunk", chunk_key, chunk, text=text
                        )
                    self._chunk_sha_memo[memo_key] = (sha, funcs)
                else:
                    sha = memo[0]
                groups.append({"names": names, "sha": sha})
            self.cache.put(
                "prefix",
                disk_key,
                {
                    "header": header,
                    "groups": groups,
                    # Covers everything the loader trusts structurally;
                    # each chunk's integrity rides on its content address.
                    "payload_sha": _module_dict_sha(
                        {"header": header, "groups": groups}
                    ),
                    "reports": {
                        name: encode_report(report)
                        for name, report in entry.reports.items()
                    },
                },
            )
        except TypeError:
            # Unencodable metadata or report: keep the entry memory-only
            # rather than persisting a lossy payload.
            pass

    def _prefix_from_payload(
        self, payload: Dict[str, Any], disk_key: str
    ) -> Optional[PrefixEntry]:
        """Deserialize a persisted prefix; ``None`` (treated as a miss) on
        any structural problem or content-hash mismatch — the corrupt
        entry is quarantined and counted in ``prefix_decode_failures``.

        Integrity is checked by re-hashing serialized dicts
        (``json.load``/``json.dumps`` round-trip identically for codec
        output) rather than recomputing the module fingerprint of the
        decoded IR — the fingerprint walk costs more than the decode
        itself and would tax every warm load. Chunks decode once per
        process: a budget ladder's entries share both the decoded
        Function objects and the decode work for every common group.
        """
        try:
            header = payload["header"]
            groups = payload["groups"]
            sealed = _module_dict_sha({"header": header, "groups": groups})
            if sealed != payload["payload_sha"]:
                raise ValueError("prefix payload hash mismatch")
            functions: Dict[str, Function] = {}
            max_site = 0
            for group in groups:
                sha = group["sha"]
                cached = self._chunk_memo.get(sha)
                if cached is None:
                    chunk_key = self._chunk_key(sha)
                    chunk = self.cache.get("prefix-chunk", chunk_key)
                    if chunk is None:
                        raise ValueError(
                            f"prefix chunk {sha[:12]} missing"
                        )
                    if _module_dict_sha(chunk) != sha:
                        self.cache.quarantine_entry(
                            "prefix-chunk", chunk_key
                        )
                        raise ValueError(
                            f"prefix chunk {sha[:12]} hash mismatch"
                        )
                    cached = functions_from_chunk(chunk)
                    self._chunk_memo[sha] = cached
                    self.stats["prefix_chunks_decoded"] += 1
                else:
                    self.stats["prefix_chunks_reused"] += 1
                chunk_functions, chunk_max = cached
                for name in group["names"]:
                    functions[name] = chunk_functions[name]
                if chunk_max > max_site:
                    max_site = chunk_max
            module = module_from_header(header, functions)
            reserve_site_ids(max_site)
            reports = {
                name: decode_report(report)
                for name, report in payload["reports"].items()
            }
        except (KeyError, TypeError, ValueError):
            self.stats["prefix_decode_failures"] += 1
            if self.cache is not None:
                self.cache.quarantine_entry("prefix", disk_key)
            return None
        return PrefixEntry(module=module, reports=reports, source="disk")
