"""The PIBE two-phase driver (paper Section 4).

Phase 1 (:meth:`PibePipeline.profile`): run a representative workload on a
profiling build and collect edge execution counts.

Phase 2 (:meth:`PibePipeline.build_variant`): on a fresh copy of the
linked module, lift the profile onto the IR, eliminate the hottest
indirect branches (ICP, then the security-driven inliner), clean up, and
harden every remaining indirect branch with the requested defenses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import PibeConfig
from repro.hardening.harden import HardeningPass
from repro.ir.clone import clone_module
from repro.ir.module import Module
from repro.ir.validate import validate_module
from repro.passes.default_inliner import DefaultInliner
from repro.passes.icp import IndirectCallPromotion
from repro.passes.inliner import PibeInliner
from repro.passes.jumptables import LowerSwitches
from repro.passes.lto import DeadFunctionElimination, SimplifyCFG
from repro.passes.manager import ModulePass, PassManager
from repro.engine.compiled import DEFAULT_ENGINE
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.base import Workload, profile_workload


@dataclass
class BuildResult:
    """A built kernel variant plus per-pass reports."""

    config: PibeConfig
    module: Module
    reports: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.config.label()


class PibePipeline:
    """Profile-then-optimize driver over a linked baseline module.

    The baseline module is never mutated: every variant is built on a deep
    copy, so one profile feeds arbitrarily many configurations (the
    evaluation sweeps budgets and defense combinations from a single
    profiling run, like the paper's workflow scripts).
    """

    def __init__(self, baseline: Module) -> None:
        validate_module(baseline)
        self.baseline = baseline

    # -- phase 1: profiling -----------------------------------------------------

    def profile(
        self,
        workload: Workload,
        iterations: int = 11,
        ops_scale: float = 1.0,
        seed: int = 3,
        engine: str = DEFAULT_ENGINE,
    ) -> EdgeProfile:
        """Run the profiling build and return merged edge counts."""
        profiling_build = clone_module(self.baseline)
        return profile_workload(
            profiling_build,
            workload,
            iterations=iterations,
            seed=seed,
            ops_scale=ops_scale,
            engine=engine,
        )

    # -- phase 2: optimization + hardening ----------------------------------------

    def build_variant(
        self,
        config: PibeConfig,
        profile: Optional[EdgeProfile] = None,
        validate: bool = False,
        verify_each: bool = False,
    ) -> BuildResult:
        """Produce one kernel variant.

        ``profile`` is required whenever the config enables ICP or
        inlining. ``validate`` re-verifies the module after every pass
        (slower; on for tests, off for benchmark sweeps). ``verify_each``
        additionally runs the full static-analysis rule set at every pass
        boundary, raising on error-severity findings.
        """
        if config.optimized and profile is None:
            raise ValueError(
                f"config {config.label()!r} needs a profile for its "
                "optimization budgets"
            )
        module = clone_module(self.baseline)

        passes: List[ModulePass] = [
            LowerSwitches(
                allow_jump_tables=not config.defenses.disables_jump_tables
            )
        ]
        if profile is not None and config.optimized:
            lift_profile(module, profile)
            if config.icp_budget is not None:
                passes.append(IndirectCallPromotion(budget=config.icp_budget))
            if config.inline_budget is not None:
                if config.use_default_inliner:
                    passes.append(DefaultInliner(profile=profile))
                else:
                    passes.append(
                        PibeInliner(
                            profile,
                            budget=config.inline_budget,
                            caller_threshold=config.caller_threshold,
                            callee_threshold=config.callee_threshold,
                            lax_heuristics=config.lax_heuristics,
                        )
                    )
            passes.append(SimplifyCFG())
        if config.run_dce:
            passes.append(DeadFunctionElimination())
        passes.append(HardeningPass(config.defenses))

        manager = PassManager(
            validate_after_each=validate,
            verify_each=verify_each,
            verify_profile=profile,
        )
        for pass_ in passes:
            manager.add(pass_)
        reports = manager.run(module)
        if not validate:
            validate_module(module)
        return BuildResult(config=config, module=module, reports=reports)
