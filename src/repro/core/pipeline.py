"""The PIBE two-phase driver (paper Section 4).

Phase 1 (:meth:`PibePipeline.profile`): run a representative workload on a
profiling build and collect edge execution counts.

Phase 2 (:meth:`PibePipeline.build_variant`): on a fresh copy of the
linked module, lift the profile onto the IR, eliminate the hottest
indirect branches (ICP, then the security-driven inliner), clean up, and
harden every remaining indirect branch with the requested defenses.

Phase 2 is *staged*: everything up to hardening — lowering, profile
lifting, ICP, inlining, CFG cleanup, DCE — depends only on the baseline,
the profile, and the optimization facets of the config (budgets,
thresholds, jump-table legality), not on which defenses get stamped on
top. That shared **optimized prefix** is built once per distinct
:class:`PrefixKey`, memoized in memory and (when the pipeline has a
:class:`~repro.evaluation.cache.DiskCache`) persisted to disk via the
exact IR codec, and every variant at the same budget is produced by
stamping the hardening pass onto a copy-on-write clone of the cached
prefix. A defense sweep at one budget runs ICP + inlining once instead
of once per defense combination.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import PibeConfig
from repro.hardening.harden import HardenReport, HardeningPass
from repro.ir.clone import clone_module, inline_serial_checkpoint
from repro.ir.fingerprint import module_fingerprint
from repro.ir.instruction import site_id_checkpoint
from repro.ir.module import Module
from repro.ir.serialize import module_from_dict, module_to_dict
from repro.ir.validate import validate_module
from repro.passes.default_inliner import DefaultInliner, DefaultInlineReport
from repro.passes.icp import ICPReport, IndirectCallPromotion, PromotionRecord
from repro.passes.inline_cost import InlineCostCache
from repro.passes.inliner import InlineReport, PibeInliner
from repro.passes.jumptables import LowerSwitches, SwitchLoweringReport
from repro.passes.lto import (
    DCEReport,
    DeadFunctionElimination,
    SimplifyCFG,
    SimplifyCFGReport,
)
from repro.passes.manager import ModulePass, PassManager
from repro.engine.compiled import DEFAULT_ENGINE
from repro.profiling.lifting import lift_profile
from repro.profiling.profile_data import EdgeProfile
from repro.workloads.base import Workload, profile_workload

#: Bump to invalidate persisted prefix entries when pass behaviour changes.
PREFIX_CACHE_VERSION = "prefix-v1"


def _module_dict_sha(module_dict: Dict[str, Any]) -> str:
    """Content hash of a serialized module dict.

    Computed over the plain ``json.dumps`` text (no ``sort_keys`` — see
    :mod:`repro.ir.serialize` on order sensitivity), which round-trips
    byte-identically through ``json.load``, so the hash taken before
    :meth:`DiskCache.put` and the one recomputed on the loaded payload
    agree exactly when the entry is intact.
    """
    text = json.dumps(module_dict)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@contextlib.contextmanager
def deterministic_build_ids():
    """Snapshot/restore every global id the build engine mints (call-site
    ids, inline label serials) around a block.

    Two builds wrapped in separate ``deterministic_build_ids()`` blocks
    allocate identical ids, making their output directly comparable —
    the staged-vs-monolithic differential tests' backbone. The caveat of
    :func:`repro.ir.instruction.site_id_checkpoint` applies: modules from
    different checkpoints reuse ids, so never mix them under one profile.
    """
    with site_id_checkpoint(), inline_serial_checkpoint():
        yield


@dataclass
class BuildResult:
    """A built kernel variant plus per-pass reports."""

    config: PibeConfig
    module: Module
    reports: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.config.label()


@dataclass(frozen=True)
class PrefixKey:
    """The optimization facets of a :class:`PibeConfig` — everything the
    optimized prefix depends on, and nothing it doesn't.

    Two configs with equal keys (and the same profile) share one prefix;
    notably the defense *selection* is absent — only its side effect on
    jump-table legality participates, because ``LowerSwitches`` runs
    inside the prefix.
    """

    allow_jump_tables: bool
    icp_budget: Optional[float]
    inline_budget: Optional[float]
    lax_heuristics: bool
    caller_threshold: int
    callee_threshold: int
    use_default_inliner: bool
    run_dce: bool

    @classmethod
    def from_config(cls, config: PibeConfig) -> "PrefixKey":
        optimized = config.optimized
        return cls(
            allow_jump_tables=not config.defenses.disables_jump_tables,
            icp_budget=config.icp_budget if optimized else None,
            inline_budget=config.inline_budget if optimized else None,
            lax_heuristics=config.lax_heuristics if optimized else False,
            caller_threshold=config.caller_threshold,
            callee_threshold=config.callee_threshold,
            use_default_inliner=(
                config.use_default_inliner if optimized else False
            ),
            run_dce=config.run_dce,
        )


@dataclass
class PrefixEntry:
    """One cached optimized prefix.

    ``module`` is treated as immutable once cached: variants are stamped
    on copy-on-write clones of it, never on the entry itself. It is
    validated once, when built (or, for disk entries, implied by the
    fingerprint matching a validated build) — stamped variants skip
    re-validation because hardening only annotates instructions.
    """

    module: Module
    reports: Dict[str, Any]
    #: provenance of this entry: "built" | "memory" | "disk"
    source: str = "built"
    #: site-sensitive fingerprint, computed lazily (only persistence and
    #: disk-load verification need it)
    _fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = module_fingerprint(
                self.module, include_sites=True
            )
        return self._fingerprint


# -- pass-report (de)serialization ------------------------------------------------
#
# Prefix entries persist their pass reports next to the module so a
# disk-warm build returns the same BuildResult.reports a cold one does.
# Reports are flat dataclasses; the one nested structure (ICP's promotion
# records) is rebuilt explicitly.

_REPORT_CLASSES = {
    cls.__name__: cls
    for cls in (
        SwitchLoweringReport,
        ICPReport,
        InlineReport,
        DefaultInlineReport,
        SimplifyCFGReport,
        DCEReport,
        HardenReport,
    )
}


def encode_report(report: Any) -> Dict[str, Any]:
    """Render one pass report as JSON-encodable data."""
    cls_name = type(report).__name__
    if cls_name not in _REPORT_CLASSES:
        raise TypeError(f"unknown report type {cls_name}")
    return {"__report__": cls_name, "data": dataclasses.asdict(report)}


def decode_report(payload: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_report`."""
    cls = _REPORT_CLASSES[payload["__report__"]]
    data = dict(payload["data"])
    if cls is ICPReport:
        data["records"] = [
            PromotionRecord(
                site_id=r["site_id"],
                caller=r["caller"],
                targets=tuple(r["targets"]),
                promoted_weight=r["promoted_weight"],
                site_weight=r["site_weight"],
            )
            for r in data.get("records", ())
        ]
    return cls(**data)


class PibePipeline:
    """Profile-then-optimize driver over a linked baseline module.

    The baseline module is never mutated: every variant is built on a deep
    copy, so one profile feeds arbitrarily many configurations (the
    evaluation sweeps budgets and defense combinations from a single
    profiling run, like the paper's workflow scripts).

    Parameters
    ----------
    baseline:
        The linked module every variant starts from. Must stay immutable
        for the pipeline's lifetime (copy-on-write clones share its
        functions).
    cache:
        Optional :class:`~repro.evaluation.cache.DiskCache`; when given,
        optimized prefixes persist under the ``"prefix"`` kind so other
        processes (parallel evaluation workers, later runs) skip the
        ICP + inlining work entirely.
    """

    def __init__(self, baseline: Module, cache: Optional[Any] = None) -> None:
        validate_module(baseline)
        self.baseline = baseline
        self.cache = cache
        self._baseline_fp: Optional[str] = None
        self._prefix_memo: Dict[Any, PrefixEntry] = {}
        #: build-engine counters (surfaced by benchmarks and ``repro
        #: cache stats``)
        self.stats: Dict[str, int] = {
            "staged_builds": 0,
            "monolithic_builds": 0,
            "prefix_builds": 0,
            "prefix_memory_hits": 0,
            "prefix_disk_hits": 0,
        }

    def _baseline_fingerprint(self) -> str:
        if self._baseline_fp is None:
            self._baseline_fp = module_fingerprint(
                self.baseline, include_sites=True
            )
        return self._baseline_fp

    def prefix_cache_info(self) -> Dict[str, Any]:
        """Snapshot of the in-memory prefix cache for stats surfaces.

        Deterministically ordered (sorted keys throughout) so the serve
        ``stats`` endpoint and its tests can compare rendered JSON.
        """
        by_source: Dict[str, int] = {}
        functions = 0
        for entry in self._prefix_memo.values():
            by_source[entry.source] = by_source.get(entry.source, 0) + 1
            functions += len(entry.module.functions)
        return {
            "entries": len(self._prefix_memo),
            "by_source": {k: by_source[k] for k in sorted(by_source)},
            "resident_functions": functions,
            "counters": {k: self.stats[k] for k in sorted(self.stats)},
        }

    # -- phase 1: profiling -----------------------------------------------------

    def profile(
        self,
        workload: Workload,
        iterations: int = 11,
        ops_scale: float = 1.0,
        seed: int = 3,
        engine: str = DEFAULT_ENGINE,
    ) -> EdgeProfile:
        """Run the profiling build and return merged edge counts."""
        profiling_build = clone_module(self.baseline)
        return profile_workload(
            profiling_build,
            workload,
            iterations=iterations,
            seed=seed,
            ops_scale=ops_scale,
            engine=engine,
        )

    # -- phase 2: optimization + hardening ----------------------------------------

    def build_variant(
        self,
        config: PibeConfig,
        profile: Optional[EdgeProfile] = None,
        validate: bool = False,
        verify_each: bool = False,
        staged: Optional[bool] = None,
    ) -> BuildResult:
        """Produce one kernel variant.

        ``profile`` is required whenever the config enables ICP or
        inlining. ``validate`` re-verifies the module after every pass
        (slower; on for tests, off for benchmark sweeps). ``verify_each``
        additionally runs the full static-analysis rule set at every pass
        boundary, raising on error-severity findings.

        ``staged`` selects the build engine: ``True`` stamps hardening
        onto the shared optimized prefix (bit-identical output, one ICP +
        inlining run per budget instead of per variant), ``False`` runs
        the monolithic pass list from a fresh baseline clone. The default
        stages whenever neither ``validate`` nor ``verify_each`` is set —
        pass-boundary verification needs every pass to actually run.
        """
        if config.optimized and profile is None:
            raise ValueError(
                f"config {config.label()!r} needs a profile for its "
                "optimization budgets"
            )
        if staged is None:
            staged = not (validate or verify_each)
        if staged and not (validate or verify_each):
            return self._build_staged(config, profile)
        self.stats["monolithic_builds"] += 1
        module = clone_module(self.baseline)

        passes: List[ModulePass] = [
            LowerSwitches(
                allow_jump_tables=not config.defenses.disables_jump_tables
            )
        ]
        if profile is not None and config.optimized:
            lift_profile(module, profile)
            self._add_optimization_passes(passes, config, profile)
        if config.run_dce:
            passes.append(DeadFunctionElimination())
        passes.append(HardeningPass(config.defenses))

        manager = PassManager(
            validate_after_each=validate,
            verify_each=verify_each,
            verify_profile=profile,
        )
        for pass_ in passes:
            manager.add(pass_)
        reports = manager.run(module)
        if not validate:
            validate_module(module)
        return BuildResult(config=config, module=module, reports=reports)

    @staticmethod
    def _add_optimization_passes(
        passes: List[ModulePass], config: PibeConfig, profile: EdgeProfile
    ) -> None:
        """Append the ICP / inline / cleanup passes for an optimized config
        (identical list for the monolithic path and the prefix build)."""
        if config.icp_budget is not None:
            passes.append(IndirectCallPromotion(budget=config.icp_budget))
        if config.inline_budget is not None:
            # One cost cache serves the whole build; the inliner keeps it
            # exact incrementally instead of invalidating per splice.
            costs = InlineCostCache()
            if config.use_default_inliner:
                passes.append(DefaultInliner(profile=profile, costs=costs))
            else:
                passes.append(
                    PibeInliner(
                        profile,
                        budget=config.inline_budget,
                        caller_threshold=config.caller_threshold,
                        callee_threshold=config.callee_threshold,
                        lax_heuristics=config.lax_heuristics,
                        costs=costs,
                    )
                )
        passes.append(SimplifyCFG())

    # -- staged engine ---------------------------------------------------------

    def _build_staged(
        self, config: PibeConfig, profile: Optional[EdgeProfile]
    ) -> BuildResult:
        """Stamp ``config``'s defenses onto the shared optimized prefix."""
        self.stats["staged_builds"] += 1
        prefix = self._optimized_prefix(config, profile)
        module = clone_module(prefix.module, cow=True)
        manager = PassManager(validate_after_each=False)
        manager.add(HardeningPass(config.defenses))
        harden_reports = manager.run(module)
        # No per-variant validate_module: the prefix was validated when
        # built, and hardening only sets instruction/module attributes —
        # it cannot change the structure validation checks.
        # Prefix reports are shared by every variant stamped from the
        # entry; hand each BuildResult its own copy so downstream
        # consumers can annotate them freely.
        reports = copy.deepcopy(prefix.reports)
        reports.update(harden_reports)
        return BuildResult(config=config, module=module, reports=reports)

    def _optimized_prefix(
        self, config: PibeConfig, profile: Optional[EdgeProfile]
    ) -> PrefixEntry:
        """The shared pre-hardening module for ``config``'s optimization
        facets: from the in-memory memo, else the disk cache, else built."""
        key = PrefixKey.from_config(config)
        digest = (
            profile.digest()
            if profile is not None and config.optimized
            else None
        )
        memo_key: Tuple[Optional[str], PrefixKey] = (digest, key)
        entry = self._prefix_memo.get(memo_key)
        if entry is not None:
            self.stats["prefix_memory_hits"] += 1
            return entry

        disk_key: Optional[str] = None
        if self.cache is not None:
            from repro.evaluation.cache import cache_key

            disk_key = cache_key(
                "prefix",
                PREFIX_CACHE_VERSION,
                self._baseline_fingerprint(),
                digest,
                key,
            )
            payload = self.cache.get("prefix", disk_key)
            if payload is not None:
                entry = self._prefix_from_payload(payload)
                if entry is not None:
                    self.stats["prefix_disk_hits"] += 1
                    self._prefix_memo[memo_key] = entry
                    return entry

        entry = self._build_prefix(config, profile, key)
        self.stats["prefix_builds"] += 1
        self._prefix_memo[memo_key] = entry
        if self.cache is not None and disk_key is not None:
            try:
                # No fingerprint in the payload: the content hash covers
                # integrity, and PrefixEntry computes its fingerprint
                # lazily — a module_fingerprint walk here would cost more
                # than the serialization itself.
                module_dict = module_to_dict(entry.module)
                self.cache.put(
                    "prefix",
                    disk_key,
                    {
                        "module": module_dict,
                        "module_sha": _module_dict_sha(module_dict),
                        "reports": {
                            name: encode_report(report)
                            for name, report in entry.reports.items()
                        },
                    },
                )
            except TypeError:
                # Unencodable metadata or report: keep the entry
                # memory-only rather than persisting a lossy payload.
                pass
        return entry

    def _build_prefix(
        self,
        config: PibeConfig,
        profile: Optional[EdgeProfile],
        key: PrefixKey,
    ) -> PrefixEntry:
        """Run the pre-hardening pass list once, on a COW baseline clone."""
        module = clone_module(self.baseline, cow=True)
        passes: List[ModulePass] = [
            LowerSwitches(allow_jump_tables=key.allow_jump_tables)
        ]
        if profile is not None and config.optimized:
            lift_profile(module, profile)
            self._add_optimization_passes(passes, config, profile)
        if key.run_dce:
            passes.append(DeadFunctionElimination())
        manager = PassManager(validate_after_each=False)
        for pass_ in passes:
            manager.add(pass_)
        reports = manager.run(module)
        validate_module(module)
        return PrefixEntry(module=module, reports=reports, source="built")

    def _prefix_from_payload(
        self, payload: Dict[str, Any]
    ) -> Optional[PrefixEntry]:
        """Deserialize a persisted prefix; ``None`` (treated as a miss) on
        any structural problem or content-hash mismatch.

        Integrity is checked by re-hashing the serialized module dict
        (``json.load``/``json.dumps`` round-trip identically for codec
        output) rather than recomputing the module fingerprint of the
        decoded IR — the fingerprint walk costs more than the decode
        itself and would tax every warm load. The entry's fingerprint
        stays lazy, exactly as on a freshly built prefix; differential
        tests verify disk-loaded and built prefixes agree end to end.
        """
        try:
            module_dict = payload["module"]
            if _module_dict_sha(module_dict) != payload["module_sha"]:
                return None
            module = module_from_dict(module_dict)
            reports = {
                name: decode_report(report)
                for name, report in payload["reports"].items()
            }
        except (KeyError, TypeError, ValueError):
            return None
        return PrefixEntry(module=module, reports=reports, source="disk")
