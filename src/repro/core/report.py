"""Overhead arithmetic and result containers for the evaluation."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional


def overhead(value: float, baseline: float) -> float:
    """Relative overhead (fraction): positive = slower than baseline."""
    if baseline == 0:
        raise ZeroDivisionError("baseline measurement is zero")
    return value / baseline - 1.0


def geomean_ratio(ratios: Iterable[float]) -> float:
    """Geometric mean of ratios (each > 0)."""
    values = list(ratios)
    if not values:
        raise ValueError("geomean of empty sequence")
    log_sum = 0.0
    for r in values:
        if r <= 0:
            raise ValueError(f"non-positive ratio {r} in geometric mean")
        log_sum += math.log(r)
    return math.exp(log_sum / len(values))


def geomean_overhead(overheads: Iterable[float]) -> float:
    """Geometric-mean overhead, the paper's summary statistic: computed
    over ``1 + overhead`` ratios then shifted back.

    Guarded for the degenerate inputs a perturbed sweep cell can
    produce: an empty sequence (every benchmark of the cell failed) and
    overheads at or below ``-1.0`` (a non-positive measurement slipped
    through), which would otherwise surface as a confusing
    "non-positive ratio" error deep inside :func:`geomean_ratio`.
    """
    values = list(overheads)
    if not values:
        raise ValueError("geomean_overhead of empty sequence")
    bad = [o for o in values if o <= -1.0]
    if bad:
        raise ValueError(
            f"overhead(s) {bad} are <= -100%; the underlying measurement "
            "is non-positive, which cannot enter a geometric mean"
        )
    return geomean_ratio(1.0 + o for o in values) - 1.0


@dataclass
class OverheadRow:
    """One benchmark's latencies and overhead vs baseline."""

    benchmark: str
    baseline_value: float
    value: float

    @property
    def overhead(self) -> float:
        return overhead(self.value, self.baseline_value)


@dataclass
class OverheadReport:
    """Per-benchmark overheads of one configuration vs a baseline."""

    config_label: str
    rows: List[OverheadRow] = field(default_factory=list)

    def add(self, benchmark: str, baseline_value: float, value: float) -> None:
        self.rows.append(OverheadRow(benchmark, baseline_value, value))

    def overheads(self) -> Dict[str, float]:
        return {r.benchmark: r.overhead for r in self.rows}

    @property
    def geomean(self) -> float:
        return geomean_overhead(r.overhead for r in self.rows)

    def row(self, benchmark: str) -> OverheadRow:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(benchmark)


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def build_overhead_report(
    label: str,
    baseline: Mapping[str, float],
    measured: Mapping[str, float],
    order: Optional[Iterable[str]] = None,
) -> OverheadReport:
    """Assemble a report from two {benchmark -> value} mappings."""
    report = OverheadReport(config_label=label)
    names = list(order) if order is not None else list(baseline)
    for name in names:
        report.add(name, baseline[name], measured[name])
    return report
